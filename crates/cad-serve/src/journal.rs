//! What goes *inside* journal records: the serve-layer semantics over
//! the opaque framing [`cad_journal`] provides.
//!
//! Three payload codecs plus the boot-time replay:
//!
//! * **create** — the resolved session spec re-serialized as the same
//!   JSON shape `POST /v1/sequences` accepts, with the server-default
//!   `update_mode` baked in, so a restarted server with a different
//!   `--update-mode` flag still rebuilds the session it acknowledged;
//! * **delta** — the `.cadpack` edge delta from the previous instance
//!   (or from the empty graph for the first), so replay feeds
//!   [`OnlineCad::push_metered`] the exact graphs the live session saw
//!   and lands on bit-identical state;
//! * **checkpoint** — the spec JSON plus the full [`OnlineState`]
//!   (threshold history as raw `f64` bit patterns, current snapshot as
//!   a delta from the empty graph), written by compaction so replay can
//!   start mid-stream.
//!
//! The recovery invariant: for a fixed spec, session state is a pure
//! function of the pushed graph sequence, so `replay` over the records
//! produces an [`OnlineCad`] whose every subsequent push returns the
//! same bits the uninterrupted session would have returned.

use crate::session::{parse_spec, SessionMap, SessionSpec};
use cad_commute::{EngineOptions, OracleProvider};
use cad_core::{OnlineCad, OnlineState, ScoreKind, ThresholdMode, UpdateMode};
use cad_graph::WeightedGraph;
use cad_journal::{JournalConfig, RecordKind, RecoveredJournal, SessionJournal};
use cad_obs::Json;
use cad_store::varint::{read_u64, write_u64};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

fn num(n: usize) -> Json {
    Json::Num(n as f64)
}

/// Re-serialize a session spec as the create-request JSON shape, with
/// the resolved update mode baked in. [`parse_spec`] round-trips it:
/// numbers go through the exact 17-significant-digit path, so a fixed
/// `delta` comes back bit-identical.
pub fn spec_to_json(spec: &SessionSpec, resolved: UpdateMode) -> String {
    let mut fields = vec![("nodes", num(spec.n_nodes))];
    match &spec.opts.engine {
        EngineOptions::Auto { embedding, .. } => {
            fields.push(("engine", Json::Str("auto".to_string())));
            fields.push(("k", num(embedding.k)));
        }
        EngineOptions::Exact => fields.push(("engine", Json::Str("exact".to_string()))),
        EngineOptions::Approximate(e) => {
            fields.push(("engine", Json::Str("approx".to_string())));
            fields.push(("k", num(e.k)));
        }
        EngineOptions::ShortestPath => {
            fields.push(("engine", Json::Str("shortest-path".to_string())))
        }
        EngineOptions::Corrected => fields.push(("engine", Json::Str("corrected".to_string()))),
    }
    let kind = match spec.opts.kind {
        ScoreKind::Cad => "cad",
        ScoreKind::Adj => "adj",
        ScoreKind::Com => "com",
    };
    fields.push(("kind", Json::Str(kind.to_string())));
    match spec.mode {
        ThresholdMode::Fixed(d) => fields.push(("delta", Json::Num(d))),
        ThresholdMode::TargetNodes(l) => fields.push(("l", num(l))),
    }
    fields.push(("update_mode", Json::Str(resolved.name().to_string())));
    if let Some(p) = &spec.opts.partition {
        fields.push((
            "partition",
            Json::obj(vec![
                ("blocks", num(p.blocks)),
                ("mode", Json::Str(p.mode.name().to_string())),
            ]),
        ));
    }
    if !spec.label.is_empty() {
        fields.push(("label", Json::Str(spec.label.clone())));
    }
    Json::obj(fields).compact()
}

fn write_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn take<'a>(buf: &mut &'a [u8], n: usize, what: &str) -> Result<&'a [u8], String> {
    if buf.len() < n {
        return Err(format!("checkpoint truncated reading {what}"));
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

fn read_f64(buf: &mut &[u8], what: &str) -> Result<f64, String> {
    let bytes = take(buf, 8, what)?;
    Ok(f64::from_bits(u64::from_le_bytes(
        bytes.try_into().expect("8 bytes"),
    )))
}

fn read_varint(buf: &mut &[u8], what: &str) -> Result<u64, String> {
    read_u64(buf).map_err(|e| format!("checkpoint {what}: {e}"))
}

/// Encode a compaction checkpoint: the spec JSON plus the complete
/// [`OnlineState`]. Every `f64` travels as its raw bit pattern, and the
/// current snapshot as an edge delta from the empty graph, so decoding
/// reproduces the state bit-for-bit.
pub fn encode_checkpoint(spec_json: &str, state: &OnlineState) -> Vec<u8> {
    let mut out = Vec::new();
    write_u64(&mut out, spec_json.len() as u64);
    out.extend_from_slice(spec_json.as_bytes());
    write_u64(&mut out, state.seen as u64);
    write_f64(&mut out, state.delta);
    write_u64(&mut out, state.n_nodes.map_or(0, |n| n as u64 + 1));
    write_u64(&mut out, state.history.len() as u64);
    for level in &state.history {
        write_u64(&mut out, level.len() as u64);
        for s in level {
            write_u64(&mut out, s.u as u64);
            write_u64(&mut out, s.v as u64);
            write_f64(&mut out, s.score);
            write_f64(&mut out, s.d_weight);
            write_f64(&mut out, s.d_commute);
        }
    }
    match (&state.prev_graph, state.n_nodes) {
        (Some(g), Some(n)) => {
            out.push(1);
            let empty = WeightedGraph::from_edges(n, &[]).expect("empty graph");
            let delta = cad_store::encode_edge_delta(&empty, g);
            write_u64(&mut out, delta.len() as u64);
            out.extend_from_slice(&delta);
        }
        _ => out.push(0),
    }
    out
}

/// Decode an [`encode_checkpoint`] payload back into the spec JSON and
/// the detector state.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<(String, OnlineState), String> {
    let mut buf = bytes;
    let spec_len = read_varint(&mut buf, "spec length")? as usize;
    let spec_json = String::from_utf8(take(&mut buf, spec_len, "spec")?.to_vec())
        .map_err(|_| "checkpoint spec is not UTF-8".to_string())?;
    let seen = read_varint(&mut buf, "seen")? as usize;
    let delta = read_f64(&mut buf, "delta")?;
    let n_nodes = match read_varint(&mut buf, "n_nodes")? {
        0 => None,
        n => Some((n - 1) as usize),
    };
    let n_levels = read_varint(&mut buf, "history length")? as usize;
    let mut history = Vec::with_capacity(n_levels);
    for _ in 0..n_levels {
        let n_scores = read_varint(&mut buf, "history level length")? as usize;
        let mut level = Vec::with_capacity(n_scores);
        for _ in 0..n_scores {
            let u = read_varint(&mut buf, "score endpoint")? as usize;
            let v = read_varint(&mut buf, "score endpoint")? as usize;
            let score = read_f64(&mut buf, "score")?;
            let d_weight = read_f64(&mut buf, "d_weight")?;
            let d_commute = read_f64(&mut buf, "d_commute")?;
            level.push(cad_core::EdgeScore {
                u,
                v,
                score,
                d_weight,
                d_commute,
            });
        }
        history.push(level);
    }
    let prev_graph = match take(&mut buf, 1, "graph flag")?[0] {
        0 => None,
        1 => {
            let n = n_nodes.ok_or("checkpoint has a graph but no vertex-set size")?;
            let len = read_varint(&mut buf, "graph delta length")? as usize;
            let delta_bytes = take(&mut buf, len, "graph delta")?;
            let edges = cad_store::decode_edge_delta(delta_bytes)
                .map_err(|e| format!("checkpoint graph delta: {e}"))?;
            let empty =
                WeightedGraph::from_edges(n, &[]).map_err(|e| format!("checkpoint graph: {e}"))?;
            Some(
                cad_store::apply_edge_delta(&empty, &edges)
                    .map_err(|e| format!("checkpoint graph: {e}"))?,
            )
        }
        other => return Err(format!("checkpoint graph flag {other} is not 0 or 1")),
    };
    if !buf.is_empty() {
        return Err(format!("{} trailing bytes after checkpoint", buf.len()));
    }
    Ok((
        spec_json,
        OnlineState {
            n_nodes,
            seen,
            delta,
            history,
            prev_graph,
        },
    ))
}

/// One journal replayed back into a ready-to-serve session.
pub struct RecoveredSession {
    /// The session id the journal belongs to.
    pub id: u64,
    /// The parsed spec (update mode resolved).
    pub spec: SessionSpec,
    /// The spec JSON as journaled (re-used for future checkpoints).
    pub spec_json: String,
    /// The detector, advanced through every journaled push.
    pub online: OnlineCad,
    /// The latest snapshot (the base for the next edge-delta body).
    pub current: Option<WeightedGraph>,
    /// Snapshots accepted before the crash.
    pub instances: usize,
}

/// Rebuild a session from its recovered record stream.
///
/// The first record is a create (replay from scratch) or a checkpoint
/// (resume mid-stream); every following delta is applied and pushed
/// through the same [`OnlineCad::push_metered`] path live requests use,
/// so the rebuilt state is bit-identical to the pre-crash session.
pub fn replay(
    rec: &RecoveredJournal,
    provider: Option<Arc<dyn OracleProvider>>,
) -> Result<RecoveredSession, String> {
    let mut records = rec.records.iter();
    let first = records.next().ok_or("journal has no records")?;
    let build = |spec: &SessionSpec| -> Result<OnlineCad, String> {
        let mode = spec
            .update_mode
            .ok_or("journaled spec lacks a resolved update_mode")?;
        let mut online = OnlineCad::with_mode(spec.opts, spec.mode).with_update_mode(mode);
        if let Some(p) = provider.clone() {
            online = online.with_provider(p);
        }
        Ok(online)
    };
    let (spec_json, spec, mut online, mut current, mut instances) = match first.kind {
        RecordKind::Create => {
            let spec_json = String::from_utf8(first.payload.clone())
                .map_err(|_| "create record is not UTF-8".to_string())?;
            let spec =
                parse_spec(spec_json.as_bytes()).map_err(|e| format!("create record: {e}"))?;
            let online = build(&spec)?;
            (spec_json, spec, online, None, 0usize)
        }
        RecordKind::Checkpoint => {
            let (spec_json, state) = decode_checkpoint(&first.payload)?;
            let spec =
                parse_spec(spec_json.as_bytes()).map_err(|e| format!("checkpoint spec: {e}"))?;
            let online = build(&spec)?;
            let current = state.prev_graph.clone();
            // `seen` counts transitions; the first push produced none,
            // so a session with a snapshot has accepted one more
            // instance than it has transitions.
            let instances = state.seen + usize::from(current.is_some());
            let online = online
                .resume(state)
                .map_err(|e| format!("checkpoint resume: {e}"))?;
            (spec_json, spec, online, current, instances)
        }
        other => return Err(format!("journal starts with a {} record", other.name())),
    };
    for r in records {
        match r.kind {
            RecordKind::Delta => {
                let edges = cad_store::decode_edge_delta(&r.payload)
                    .map_err(|e| format!("delta record: {e}"))?;
                let g = match &current {
                    Some(base) => cad_store::apply_edge_delta(base, &edges),
                    None => {
                        let empty = WeightedGraph::from_edges(spec.n_nodes, &[])
                            .map_err(|e| format!("delta record: {e}"))?;
                        cad_store::apply_edge_delta(&empty, &edges)
                    }
                }
                .map_err(|e| format!("delta record: {e}"))?;
                online
                    .push_metered(g.clone())
                    .map_err(|e| format!("replayed push rejected: {e}"))?;
                current = Some(g);
                instances += 1;
            }
            other => return Err(format!("unexpected {} record mid-journal", other.name())),
        }
    }
    Ok(RecoveredSession {
        id: rec.session_id,
        spec,
        spec_json,
        online,
        current,
        instances,
    })
}

/// Boot-time recovery: read every journal under `root`, replay each
/// into a live session in `sessions`, and reopen its journal for
/// appending. Counts `journal.recovered_sessions` and leaves a
/// `recovery` event per session in the flight recorder.
///
/// Corruption (anything beyond a torn tail) is a hard error: a server
/// asked to be durable must not silently serve partial state.
pub fn recover_all(
    root: &Path,
    cfg: &JournalConfig,
    sessions: &SessionMap,
    provider: Option<Arc<dyn OracleProvider>>,
) -> Result<usize, String> {
    let recovered = cad_journal::recover_root(root).map_err(|e| e.to_string())?;
    let mut n = 0;
    for rec in recovered {
        let t0 = Instant::now();
        let rs = replay(&rec, provider.clone())
            .map_err(|e| format!("session {}: {e}", rec.session_id))?;
        let journal = SessionJournal::open(root, cfg.clone(), &rec)
            .map_err(|e| format!("session {}: reopen failed: {e}", rec.session_id))?;
        sessions
            .restore(rs, journal)
            .map_err(|e| format!("session {}: restore failed: {e:?}", rec.session_id))?;
        cad_obs::counters::JOURNAL_RECOVERED_SESSIONS.inc();
        cad_obs::events::record(
            cad_obs::EventKind::Recovery,
            "recovery",
            t0.elapsed().as_secs_f64(),
            rec.session_id,
        );
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cad_core::EdgeScore;

    #[test]
    fn spec_json_round_trips_through_parse_spec() {
        for body in [
            br#"{"nodes": 6, "engine": "exact", "delta": 0.4}"#.as_slice(),
            br#"{"nodes": 9, "engine": "approx", "k": 6, "l": 3}"#,
            br#"{"nodes": 4, "label": "demo \"quoted\""}"#,
            br#"{"nodes": 8, "engine": "shortest-path", "delta": 0.125}"#,
            br#"{"nodes": 8, "engine": "corrected"}"#,
            br#"{"nodes": 8, "partition": {"blocks": 3, "mode": "bfs"}}"#,
            br#"{"nodes": 6, "delta": 0.30000000000000004}"#,
        ] {
            let spec = parse_spec(body).unwrap();
            let json = spec_to_json(&spec, spec.update_mode.unwrap_or(UpdateMode::Incremental));
            let back = parse_spec(json.as_bytes()).unwrap_or_else(|e| {
                panic!("{json} must re-parse: {e}");
            });
            assert_eq!(back.n_nodes, spec.n_nodes, "{json}");
            assert_eq!(back.label, spec.label, "{json}");
            assert_eq!(back.opts.partition, spec.opts.partition, "{json}");
            assert_eq!(
                format!("{:?}", back.opts.engine),
                format!("{:?}", spec.opts.engine),
                "{json}"
            );
            match (back.mode, spec.mode) {
                (ThresholdMode::Fixed(a), ThresholdMode::Fixed(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits(), "{json}")
                }
                (ThresholdMode::TargetNodes(a), ThresholdMode::TargetNodes(b)) => {
                    assert_eq!(a, b, "{json}")
                }
                other => panic!("threshold mode changed: {other:?}"),
            }
            assert!(
                back.update_mode.is_some(),
                "journaled spec pins the update mode: {json}"
            );
        }
    }

    #[test]
    fn checkpoint_round_trips_bit_for_bit() {
        let g = WeightedGraph::from_edges(4, &[(0, 1, 1.5), (1, 2, 0.25), (2, 3, 3.0)]).unwrap();
        let state = OnlineState {
            n_nodes: Some(4),
            seen: 7,
            delta: 0.3 + 0.3 + 0.3, // deliberately non-representable
            history: vec![
                vec![EdgeScore {
                    u: 0,
                    v: 1,
                    score: 0.123_456_789_012_345_68,
                    d_weight: -2.5,
                    d_commute: f64::MIN_POSITIVE,
                }],
                vec![],
            ],
            prev_graph: Some(g.clone()),
        };
        let spec_json = r#"{"nodes": 4, "update_mode": "rebuild"}"#;
        let bytes = encode_checkpoint(spec_json, &state);
        let (json2, state2) = decode_checkpoint(&bytes).unwrap();
        assert_eq!(json2, spec_json);
        assert_eq!(state2.n_nodes, Some(4));
        assert_eq!(state2.seen, 7);
        assert_eq!(state2.delta.to_bits(), state.delta.to_bits());
        assert_eq!(state2.history.len(), 2);
        assert_eq!(state2.history[1].len(), 0);
        let (a, b) = (&state.history[0][0], &state2.history[0][0]);
        assert_eq!((a.u, a.v), (b.u, b.v));
        assert_eq!(a.score.to_bits(), b.score.to_bits());
        assert_eq!(a.d_weight.to_bits(), b.d_weight.to_bits());
        assert_eq!(a.d_commute.to_bits(), b.d_commute.to_bits());
        let g2 = state2.prev_graph.expect("graph survives");
        let none = cad_store::encode_edge_delta(&g, &g2);
        let edges = cad_store::decode_edge_delta(&none).unwrap();
        assert!(edges.is_empty(), "graphs must be identical");

        // A stateless checkpoint (no pushes yet) also round-trips.
        let fresh = OnlineState {
            n_nodes: None,
            seen: 0,
            delta: f64::MAX,
            history: Vec::new(),
            prev_graph: None,
        };
        let bytes = encode_checkpoint(spec_json, &fresh);
        let (_, back) = decode_checkpoint(&bytes).unwrap();
        assert_eq!(back.n_nodes, None);
        assert!(back.prev_graph.is_none());
        assert_eq!(back.delta.to_bits(), f64::MAX.to_bits());

        // Truncation and trailing garbage are structured errors.
        assert!(decode_checkpoint(&bytes[..bytes.len() - 1]).is_err());
        let mut long = bytes.clone();
        long.push(9);
        assert!(decode_checkpoint(&long).is_err());
    }
}
