//! Request routing for the detection service.
//!
//! One pure-ish entry point, [`route`]: parsed request in, [`Response`]
//! out. All endpoint semantics live here — the server module only moves
//! connections and bytes. Every response body is JSON (one line,
//! NDJSON-compatible) except `/healthz` and `/metrics`; every error
//! uses the shared [`cad_obs::http::error_body`] schema
//! `{"error": {"code": ..., "message": ...}}`.
//!
//! | Method | Path | Purpose |
//! |---|---|---|
//! | `POST` | `/v1/sequences` | create a session from a JSON spec |
//! | `POST` | `/v1/sequences/{id}/snapshots` | push the next instance |
//! | `GET` | `/v1/sequences/{id}` | session status |
//! | `DELETE` | `/v1/sequences/{id}` | drop the session |
//! | `GET` | `/healthz` | liveness probe |
//! | `GET` | `/metrics` | Prometheus text exposition |
//! | `GET` | `/v1/debug/trace` | flight-recorder snapshot (`?limit=N`) |
//! | `GET` | `/v1/debug/profile` | Chrome-trace timeline (`?limit=N`) |
//! | `POST` | `/v1/shutdown` | request graceful drain |
//!
//! Every request is minted a [`cad_obs::TraceCtx`] installed for the
//! handler's duration, echoed back as `X-Cad-Trace-Id`, and stamped on
//! every flight-recorder event the layers below emit.

use crate::server::Shutdown;
use crate::session::{parse_spec, CreateError, Session, SessionMap};
use cad_commute::OracleProvider;
use cad_core::{OnlineStepMetrics, StepOracle, TransitionAnomalies};
use cad_graph::{GraphError, WeightedGraph};
use cad_obs::events::EventKind;
use cad_obs::http::{error_body, Request};
use cad_obs::Json;
use std::sync::Arc;

/// Request attribution the server's access log needs back from the
/// handler: everything here is observability-only (wall-times and
/// trace ids — the sanctioned nondeterminism) and never feeds the
/// anomaly path.
#[derive(Debug, Clone, Default)]
pub struct ResponseMeta {
    /// The trace id minted for the request (0 when routed outside the
    /// traced entry point).
    pub trace_id: u64,
    /// Session id the request addressed (0 when none).
    pub session_id: u64,
    /// Handler wall-clock seconds (excludes parse and socket writes).
    pub handler_secs: f64,
    /// `"incremental"` / `"rebuild"` for snapshot pushes.
    pub update_mode: Option<&'static str>,
    /// Fallback reason name when a push declined an incremental update.
    pub fallback: Option<&'static str>,
    /// Oracle backend that served a push (labels `serve_push_secs`).
    pub engine: Option<&'static str>,
    /// Closed-table event name overriding the status-derived one for
    /// the error event (e.g. `rate_limited` vs the generic 429 name).
    pub error_event: Option<&'static str>,
}

/// A response ready for [`cad_obs::http::write_response`].
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// The body bytes.
    pub body: Vec<u8>,
    /// Extra headers (e.g. `Retry-After`).
    pub extra: Vec<(&'static str, String)>,
    /// Access-log attribution fields.
    pub meta: ResponseMeta,
}

impl Response {
    fn json(status: u16, v: Json) -> Response {
        let mut body = v.compact();
        body.push('\n');
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            extra: Vec::new(),
            meta: ResponseMeta::default(),
        }
    }

    fn error(status: u16, code: &str, message: &str) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: error_body(code, message).into_bytes(),
            extra: Vec::new(),
            meta: ResponseMeta::default(),
        }
    }
}

/// Everything [`route`] needs besides the request.
pub struct RouterCtx {
    /// The session registry.
    pub sessions: SessionMap,
    /// Warm oracle cache wired into every new session (`--store-dir`).
    pub provider: Option<Arc<dyn OracleProvider>>,
    /// The drain signal `POST /v1/shutdown` trips.
    pub shutdown: Arc<Shutdown>,
}

/// The media type of a binary `.cadpack` edge-delta snapshot body.
pub const DELTA_CONTENT_TYPE: &str = "application/x-cadpack-delta";

fn num(n: usize) -> Json {
    Json::Num(n as f64)
}

/// Serialize a transition (or its absence) exactly: scores go through
/// the 17-significant-digit JSON number path, so a client reading them
/// back sees the same `f64` bits batch detection produces.
fn transition_json(tr: &Option<TransitionAnomalies>, delta: f64, m: &OnlineStepMetrics) -> Json {
    let Some(tr) = tr else {
        return Json::Null;
    };
    let edges: Vec<Json> = tr
        .edges
        .iter()
        .map(|e| {
            Json::obj(vec![
                ("u", num(e.u)),
                ("v", num(e.v)),
                ("score", Json::Num(e.score)),
                ("d_weight", Json::Num(e.d_weight)),
                ("d_commute", Json::Num(e.d_commute)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("t", num(tr.t)),
        (
            "delta",
            if delta == f64::MAX {
                Json::Null
            } else {
                Json::Num(delta)
            },
        ),
        ("n_scored", num(m.n_scored)),
        ("edges", Json::Arr(edges)),
        (
            "nodes",
            Json::Arr(tr.nodes.iter().map(|&n| num(n)).collect()),
        ),
        (
            "latency",
            Json::obj(vec![
                ("build_secs", Json::Num(m.build.build_secs)),
                (
                    "update_secs",
                    match m.oracle {
                        StepOracle::Incremental { update_secs, .. } => Json::Num(update_secs),
                        _ => Json::Num(0.0),
                    },
                ),
                ("score_secs", Json::Num(m.score_secs)),
            ]),
        ),
    ])
}

/// The oracle path this push took: `"update_mode"` is `incremental` or
/// `rebuild`, and a fallback (incremental requested, rebuild taken)
/// additionally names its trigger in `"fallback"` so operators can tell
/// a fallback storm from plain rebuild mode.
fn oracle_json(step: StepOracle) -> Vec<(&'static str, Json)> {
    let mut fields = vec![("update_mode", Json::Str(step.mode_name().to_string()))];
    if let Some(reason) = step.fallback_reason() {
        fields.push(("fallback", Json::Str(reason.name().to_string())));
    }
    fields
}

/// `(status, code)` for a snapshot the detector rejected. Public so
/// `cad watch` can emit the *same* structured error body
/// (`{"error": {"code": ..., ...}}`) for a bad NDJSON snapshot that the
/// serve snapshot endpoint returns for the same defect.
pub fn graph_error_code(e: &GraphError) -> (u16, &'static str) {
    match e {
        GraphError::NodeOutOfRange { .. } => (422, "node_out_of_range"),
        GraphError::MixedNodeCounts { .. } => (422, "mixed_node_counts"),
        GraphError::InvalidWeight { .. } => (422, "invalid_weight"),
        GraphError::SelfLoop { .. } => (422, "self_loop"),
        _ => (422, "invalid_snapshot"),
    }
}

/// Parse a JSON edge-list snapshot `{"nodes": N, "edges": [[u, v, w],
/// ...]}`. `nodes` may be omitted — the session's vertex-set size is
/// used — but when present it must match exactly.
#[allow(clippy::result_large_err)] // the Err is a cold bad-request path
fn snapshot_from_json(body: &[u8], session_nodes: usize) -> Result<WeightedGraph, Response> {
    let text = std::str::from_utf8(body)
        .map_err(|_| Response::error(400, "bad_request", "snapshot body is not UTF-8"))?;
    let v = cad_obs::parse_json(text)
        .map_err(|e| Response::error(400, "bad_request", &format!("snapshot is not JSON: {e}")))?;
    let n = match v.get("nodes") {
        Some(j) => j.as_u64().ok_or_else(|| {
            Response::error(400, "bad_request", "`nodes` must be a non-negative integer")
        })? as usize,
        None => session_nodes,
    };
    if n != session_nodes {
        let e = GraphError::MixedNodeCounts {
            expected: session_nodes,
            found: n,
            at: 0,
        };
        let (status, code) = graph_error_code(&e);
        return Err(Response::error(status, code, &e.to_string()));
    }
    let arr = v
        .get("edges")
        .and_then(Json::as_arr)
        .ok_or_else(|| Response::error(400, "bad_request", "snapshot needs an `edges` array"))?;
    let mut edges = Vec::with_capacity(arr.len());
    for (i, e) in arr.iter().enumerate() {
        let triple = e.as_arr().filter(|t| t.len() == 3).ok_or_else(|| {
            Response::error(
                400,
                "bad_request",
                &format!("edges[{i}] is not a [u, v, w] triple"),
            )
        })?;
        let u = triple[0].as_u64().ok_or_else(|| {
            Response::error(
                400,
                "bad_request",
                &format!("edges[{i}] endpoint not an integer"),
            )
        })?;
        let v2 = triple[1].as_u64().ok_or_else(|| {
            Response::error(
                400,
                "bad_request",
                &format!("edges[{i}] endpoint not an integer"),
            )
        })?;
        let w = triple[2].as_f64().ok_or_else(|| {
            Response::error(
                400,
                "bad_request",
                &format!("edges[{i}] weight not a number"),
            )
        })?;
        edges.push((u as usize, v2 as usize, w));
    }
    WeightedGraph::from_edges(n, &edges).map_err(|e| {
        let (status, code) = graph_error_code(&e);
        Response::error(status, code, &e.to_string())
    })
}

/// Decode a binary edge-delta body against the session's current
/// snapshot.
#[allow(clippy::result_large_err)] // the Err is a cold bad-request path
fn snapshot_from_delta(
    body: &[u8],
    base: Option<&WeightedGraph>,
) -> Result<WeightedGraph, Response> {
    let Some(base) = base else {
        return Err(Response::error(
            422,
            "delta_without_base",
            "an edge-delta body needs a previous snapshot to apply to; \
             send the first snapshot as a JSON edge list",
        ));
    };
    let delta = cad_store::decode_edge_delta(body)
        .map_err(|e| Response::error(400, "bad_delta", &e.to_string()))?;
    cad_store::apply_edge_delta(base, &delta).map_err(|e| match e {
        cad_store::StoreError::Graph(g) => {
            let (status, code) = graph_error_code(&g);
            Response::error(status, code, &g.to_string())
        }
        other => Response::error(400, "bad_delta", &other.to_string()),
    })
}

fn create_session(req: &Request, ctx: &RouterCtx) -> Response {
    let spec = match parse_spec(&req.body) {
        Ok(s) => s,
        Err(msg) => return Response::error(422, "bad_spec", &msg),
    };
    match ctx.sessions.create(spec, ctx.provider.clone()) {
        Ok(session) => Response::json(
            201,
            Json::obj(vec![
                ("id", num(session.id as usize)),
                ("nodes", num(session.n_nodes)),
                ("label", Json::Str(session.label.clone())),
            ]),
        ),
        Err(CreateError::Full { max_sessions }) => {
            let mut resp = Response::error(
                429,
                "too_many_sessions",
                &format!("session cap of {max_sessions} reached; delete one or retry later"),
            );
            resp.extra.push(("Retry-After", "1".to_string()));
            resp
        }
        Err(CreateError::Journal(e)) => {
            let mut resp = Response::error(
                500,
                "journal_error",
                &format!("cannot journal the session create: {e}"),
            );
            resp.meta.error_event = Some("journal_error");
            resp
        }
    }
}

fn push_snapshot(req: &Request, session: &Session) -> Response {
    let _span = cad_obs::TraceSpan::enter("push");
    let mut inner = session.lock();
    if let Some(bucket) = inner.bucket.as_mut() {
        if let Err(wait_secs) = bucket.try_take() {
            cad_obs::counters::SERVE_RATE_LIMITED.inc();
            let mut resp = Response::error(
                429,
                "rate_limited",
                &format!(
                    "session {} exceeded its push rate limit; retry in {wait_secs:.3}s",
                    session.id
                ),
            );
            resp.extra.push((
                "Retry-After",
                format!("{}", wait_secs.ceil().max(1.0) as u64),
            ));
            resp.meta.error_event = Some("rate_limited");
            return resp;
        }
    }
    let is_delta = req
        .header("content-type")
        .is_some_and(|ct| ct.split(';').next().map(str::trim) == Some(DELTA_CONTENT_TYPE));
    let g = if is_delta {
        snapshot_from_delta(&req.body, inner.current.as_ref())
    } else {
        snapshot_from_json(&req.body, session.n_nodes)
    };
    let g = match g {
        Ok(g) => g,
        Err(resp) => return resp,
    };
    match inner.online.push_metered(g.clone()) {
        Ok((tr, m)) => {
            // Journal the accepted push before the response exists: a
            // crash after the append replays this instance; a crash
            // before it never acknowledged the push. The delta is
            // re-encoded from the session's own previous snapshot, so
            // JSON and binary bodies journal identically.
            if inner.journal.is_some() {
                let delta = match &inner.current {
                    Some(base) => cad_store::encode_edge_delta(base, &g),
                    None => {
                        let empty = WeightedGraph::from_edges(session.n_nodes, &[])
                            .expect("empty graph is always valid");
                        cad_store::encode_edge_delta(&empty, &g)
                    }
                };
                let journal = inner.journal.as_mut().expect("checked above");
                if let Err(e) = journal.append(cad_journal::RecordKind::Delta, &delta) {
                    let mut resp = Response::error(
                        500,
                        "journal_error",
                        &format!("cannot journal the push: {e}"),
                    );
                    resp.meta.error_event = Some("journal_error");
                    return resp;
                }
            }
            inner.current = Some(g);
            inner.instances += 1;
            let mut fields = vec![
                ("id", num(session.id as usize)),
                ("instance", num(inner.instances - 1)),
            ];
            fields.extend(oracle_json(m.oracle));
            if let Some(p) = &m.partition {
                fields.push((
                    "partition",
                    Json::obj(vec![
                        ("blocks", num(p.blocks)),
                        ("boundary_edges", num(p.boundary_edges)),
                    ]),
                ));
            }
            fields.push(("transition", transition_json(&tr, inner.online.delta(), &m)));
            let mut resp = Response::json(200, Json::obj(fields));
            resp.meta.update_mode = Some(m.oracle.mode_name());
            resp.meta.fallback = m.oracle.fallback_reason().map(|r| r.name());
            resp.meta.engine = Some(m.build.backend);
            resp
        }
        Err(e) => {
            let (status, code) = graph_error_code(&e);
            Response::error(status, code, &e.to_string())
        }
    }
}

fn session_status(session: &Session) -> Response {
    let inner = session.lock();
    Response::json(
        200,
        Json::obj(vec![
            ("id", num(session.id as usize)),
            ("nodes", num(session.n_nodes)),
            ("label", Json::Str(session.label.clone())),
            ("instances", num(inner.instances)),
            ("transitions", num(inner.online.n_transitions())),
            (
                "delta",
                if inner.online.delta() == f64::MAX {
                    Json::Null
                } else {
                    Json::Num(inner.online.delta())
                },
            ),
        ]),
    )
}

fn not_found(path: &str) -> Response {
    Response::error(404, "not_found", &format!("no route for `{path}`"))
}

fn method_not_allowed(method: &str, path: &str) -> Response {
    Response::error(
        405,
        "method_not_allowed",
        &format!("`{method}` not allowed on `{path}`"),
    )
}

/// Extract a query parameter from a raw request path
/// (`/v1/debug/trace?limit=32`).
fn query_param<'a>(raw_path: &'a str, key: &str) -> Option<&'a str> {
    let query = raw_path.split('?').nth(1)?;
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then_some(v)
    })
}

/// `GET /v1/debug/trace?limit=N` — the newest `N` flight-recorder
/// events (default 256), oldest first, with the ring's drop accounting.
fn debug_trace(raw_path: &str) -> Response {
    let limit = query_param(raw_path, "limit")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(256);
    let snap = cad_obs::recorder().snapshot(limit);
    Response::json(
        200,
        Json::obj(vec![
            ("total", Json::Num(snap.total as f64)),
            ("dropped", Json::Num(snap.dropped as f64)),
            ("retained", num(snap.events.len())),
            (
                "events",
                Json::Arr(snap.events.iter().map(|e| e.to_json()).collect()),
            ),
        ]),
    )
}

/// `GET /v1/debug/profile?limit=N` — the flight recorder and span
/// registry rendered as Chrome trace-event JSON
/// ([`cad_obs::profile`]), ready to drop into Perfetto / `chrome:`
/// `//tracing` without restarting the server. `limit` bounds the
/// flight-recorder events considered (default: the whole ring).
fn debug_profile(raw_path: &str) -> Response {
    let limit = query_param(raw_path, "limit")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(cad_obs::RING_CAPACITY);
    Response::json(200, cad_obs::profile::capture(limit))
}

/// The closed event-table name for the endpoint a request hit.
fn endpoint_name(segments: &[&str], method: &str) -> &'static str {
    match segments {
        ["healthz"] => "healthz",
        ["metrics"] => "metrics",
        ["v1", "shutdown"] => "shutdown",
        ["v1", "debug", "trace"] => "debug_trace",
        ["v1", "debug", "profile"] => "debug_profile",
        ["v1", "sequences"] => "create",
        ["v1", "sequences", _] if method == "DELETE" => "delete",
        ["v1", "sequences", _] => "status",
        ["v1", "sequences", _, "snapshots"] => "push",
        _ => "other",
    }
}

/// The closed event-table name for an error status.
fn error_event_name(status: u16) -> &'static str {
    match status {
        400 => "bad_request",
        404 => "not_found",
        405 => "method_not_allowed",
        408 => "timeout",
        413 => "body_too_large",
        422 => "bad_request",
        429 => "session_cap",
        431 => "head_too_large",
        500 => "internal",
        503 => "overloaded",
        _ => "other",
    }
}

/// Route one request. Counts `serve.requests`, observes the
/// per-endpoint latency histograms, and runs the handler under a
/// freshly minted [`cad_obs::TraceCtx`] echoed back as
/// `X-Cad-Trace-Id`.
pub fn route(req: &Request, ctx: &RouterCtx) -> Response {
    route_queued(req, ctx, None, 0)
}

/// [`route`] for requests popped off the worker queue: `queue_wait` is
/// the seconds the connection waited for a worker (recorded as a
/// `queue_wait` event and in the `serve_queue_wait_secs` histogram;
/// pass `None` when the request did not cross the queue) and `worker`
/// is the handling worker's index.
pub fn route_queued(
    req: &Request,
    ctx: &RouterCtx,
    queue_wait: Option<f64>,
    worker: usize,
) -> Response {
    cad_obs::counters::SERVE_REQUESTS.inc();
    let path = req.path.split('?').next().unwrap_or("");
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let method = req.method.as_str();

    // Attribute everything below — events, counter deltas, solver
    // spans — to this request.
    let session_id = match segments.as_slice() {
        ["v1", "sequences", id, ..] => id.parse::<u64>().unwrap_or(0),
        _ => 0,
    };
    let tr = cad_obs::TraceCtx::mint(session_id);
    let _trace = cad_obs::trace::set_current(tr);
    if let Some(wait) = queue_wait {
        cad_obs::histograms::SERVE_QUEUE_WAIT_SECS.observe(wait);
        cad_obs::events::record(EventKind::QueueWait, "queue_wait", wait, worker as u64);
    }
    let endpoint = endpoint_name(&segments, method);
    let (mut resp, secs) = cad_obs::time_it(|| dispatch(req, ctx, path, &segments, method));
    cad_obs::events::record(EventKind::Request, endpoint, secs, resp.status as u64);
    if resp.status >= 400 {
        cad_obs::events::record(
            EventKind::Error,
            resp.meta
                .error_event
                .unwrap_or_else(|| error_event_name(resp.status)),
            0.0,
            resp.status as u64,
        );
    }
    resp.meta.trace_id = tr.trace_id;
    resp.meta.session_id = session_id;
    resp.meta.handler_secs = secs;
    resp.extra.push(("X-Cad-Trace-Id", tr.id_hex()));
    resp
}

/// The endpoint dispatch [`route_queued`] runs under the installed
/// trace.
fn dispatch(
    req: &Request,
    ctx: &RouterCtx,
    path: &str,
    segments: &[&str],
    method: &str,
) -> Response {
    match segments {
        ["healthz"] => {
            let (resp, secs) = cad_obs::time_it(|| match method {
                "GET" => Response {
                    status: 200,
                    content_type: "text/plain; charset=utf-8",
                    body: b"ok\n".to_vec(),
                    extra: Vec::new(),
                    meta: ResponseMeta::default(),
                },
                _ => method_not_allowed(method, path),
            });
            cad_obs::histograms::SERVE_ADMIN_SECS.observe(secs);
            resp
        }
        ["metrics"] => {
            let (resp, secs) = cad_obs::time_it(|| match method {
                "GET" => Response {
                    status: 200,
                    content_type: "text/plain; version=0.0.4; charset=utf-8",
                    body: cad_obs::render_prometheus().into_bytes(),
                    extra: Vec::new(),
                    meta: ResponseMeta::default(),
                },
                _ => method_not_allowed(method, path),
            });
            cad_obs::histograms::SERVE_ADMIN_SECS.observe(secs);
            resp
        }
        ["v1", "debug", "trace"] => {
            let (resp, secs) = cad_obs::time_it(|| match method {
                "GET" => debug_trace(&req.path),
                _ => method_not_allowed(method, path),
            });
            cad_obs::histograms::SERVE_ADMIN_SECS.observe(secs);
            resp
        }
        ["v1", "debug", "profile"] => {
            let (resp, secs) = cad_obs::time_it(|| match method {
                "GET" => debug_profile(&req.path),
                _ => method_not_allowed(method, path),
            });
            cad_obs::histograms::SERVE_ADMIN_SECS.observe(secs);
            resp
        }
        ["v1", "shutdown"] => {
            let (resp, secs) = cad_obs::time_it(|| match method {
                "POST" => {
                    ctx.shutdown.request();
                    Response::json(200, Json::obj(vec![("draining", Json::Bool(true))]))
                }
                _ => method_not_allowed(method, path),
            });
            cad_obs::histograms::SERVE_ADMIN_SECS.observe(secs);
            resp
        }
        ["v1", "sequences"] => match method {
            "POST" => {
                let (resp, secs) = cad_obs::time_it(|| create_session(req, ctx));
                cad_obs::histograms::SERVE_CREATE_SECS.observe(secs);
                resp
            }
            _ => method_not_allowed(method, path),
        },
        ["v1", "sequences", id] => {
            let Ok(id) = id.parse::<u64>() else {
                return not_found(path);
            };
            let Some(session) = ctx.sessions.get(id) else {
                return Response::error(404, "no_such_session", &format!("no session {id}"));
            };
            let (resp, secs) = cad_obs::time_it(|| match method {
                "GET" => session_status(&session),
                "DELETE" => {
                    ctx.sessions.remove(id);
                    Response::json(
                        200,
                        Json::obj(vec![
                            ("id", num(id as usize)),
                            ("deleted", Json::Bool(true)),
                        ]),
                    )
                }
                _ => method_not_allowed(method, path),
            });
            cad_obs::histograms::SERVE_ADMIN_SECS.observe(secs);
            resp
        }
        ["v1", "sequences", id, "snapshots"] => {
            let Ok(id) = id.parse::<u64>() else {
                return not_found(path);
            };
            match method {
                "POST" => {
                    let Some(session) = ctx.sessions.get(id) else {
                        return Response::error(
                            404,
                            "no_such_session",
                            &format!("no session {id}"),
                        );
                    };
                    let (resp, secs) = cad_obs::time_it(|| push_snapshot(req, &session));
                    cad_obs::histograms::SERVE_PUSH_SECS.observe(secs);
                    if let Some(engine) = resp.meta.engine {
                        cad_obs::histograms::labeled::SERVE_PUSH_SECS_BY_ENGINE
                            .observe(engine, secs);
                    }
                    resp
                }
                _ => method_not_allowed(method, path),
            }
        }
        _ => not_found(path),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> RouterCtx {
        RouterCtx {
            sessions: SessionMap::new(8),
            provider: None,
            shutdown: Arc::new(Shutdown::new()),
        }
    }

    fn request(method: &str, path: &str, body: &[u8]) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: body.to_vec(),
            keep_alive: true,
        }
    }

    fn delta_request(path: &str, body: &[u8]) -> Request {
        let mut req = request("POST", path, body);
        req.headers
            .push(("content-type".to_string(), DELTA_CONTENT_TYPE.to_string()));
        req
    }

    fn parse(resp: &Response) -> Json {
        let text = std::str::from_utf8(&resp.body).expect("utf-8 body");
        cad_obs::parse_json(text).expect("json body")
    }

    fn snapshot_body(bridge: f64) -> String {
        let mut edges = vec![
            (0, 1, 3.0),
            (0, 2, 3.0),
            (1, 2, 3.0),
            (3, 4, 3.0),
            (3, 5, 3.0),
            (4, 5, 3.0),
            (2, 3, 0.2),
        ];
        if bridge > 0.0 {
            edges.push((0, 5, bridge));
        }
        let list: Vec<String> = edges
            .iter()
            .map(|(u, v, w)| format!("[{u}, {v}, {w:?}]"))
            .collect();
        format!(r#"{{"nodes": 6, "edges": [{}]}}"#, list.join(", "))
    }

    #[test]
    fn create_push_status_delete_lifecycle() {
        let _g = crate::test_lock();
        cad_obs::reset();
        let ctx = ctx();
        let resp = route(
            &request(
                "POST",
                "/v1/sequences",
                br#"{"nodes": 6, "engine": "exact", "delta": 0.4}"#,
            ),
            &ctx,
        );
        assert_eq!(resp.status, 201);
        let id = parse(&resp).get("id").and_then(Json::as_u64).unwrap();

        let push = format!("/v1/sequences/{id}/snapshots");
        let resp = route(&request("POST", &push, snapshot_body(0.0).as_bytes()), &ctx);
        assert_eq!(resp.status, 200);
        assert!(matches!(parse(&resp).get("transition"), Some(Json::Null)));

        let resp = route(&request("POST", &push, snapshot_body(1.5).as_bytes()), &ctx);
        assert_eq!(resp.status, 200);
        let tr = parse(&resp);
        let tr = tr.get("transition").expect("transition");
        assert_eq!(tr.get("t").and_then(Json::as_u64), Some(0));
        let edges = tr.get("edges").and_then(Json::as_arr).unwrap();
        assert_eq!(edges.len(), 1, "the bridge edge is anomalous");
        assert_eq!(edges[0].get("u").and_then(Json::as_u64), Some(0));
        assert_eq!(edges[0].get("v").and_then(Json::as_u64), Some(5));

        let status_path = format!("/v1/sequences/{id}");
        let resp = route(&request("GET", &status_path, b""), &ctx);
        assert_eq!(resp.status, 200);
        let v = parse(&resp);
        assert_eq!(v.get("instances").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("transitions").and_then(Json::as_u64), Some(1));

        let resp = route(&request("DELETE", &status_path, b""), &ctx);
        assert_eq!(resp.status, 200);
        let resp = route(&request("GET", &status_path, b""), &ctx);
        assert_eq!(resp.status, 404);
        assert_eq!(cad_obs::counters::SERVE_REQUESTS.get(), 6);
    }

    #[test]
    fn push_reports_update_mode_and_fallbacks() {
        let _g = crate::test_lock();
        cad_obs::reset();
        let ctx = ctx();
        let resp = route(
            &request(
                "POST",
                "/v1/sequences",
                br#"{"nodes": 6, "engine": "exact", "delta": 0.4, "update_mode": "incremental"}"#,
            ),
            &ctx,
        );
        assert_eq!(resp.status, 201);
        let id = parse(&resp).get("id").and_then(Json::as_u64).unwrap();
        let push = format!("/v1/sequences/{id}/snapshots");

        // First snapshot has no previous oracle: always a fresh build.
        let resp = route(&request("POST", &push, snapshot_body(0.0).as_bytes()), &ctx);
        let v = parse(&resp);
        assert_eq!(v.get("update_mode").and_then(Json::as_str), Some("rebuild"));
        assert!(
            v.get("fallback").is_none(),
            "a plain rebuild is no fallback"
        );

        // A weight-only delta is applied in place.
        let resp = route(&request("POST", &push, snapshot_body(1.5).as_bytes()), &ctx);
        let v = parse(&resp);
        assert_eq!(
            v.get("update_mode").and_then(Json::as_str),
            Some("incremental")
        );
        assert!(v.get("fallback").is_none());
        let latency = v.get("transition").unwrap().get("latency").unwrap();
        let upd = latency.get("update_secs").and_then(Json::as_f64).unwrap();
        assert!(upd >= 0.0);

        // Dropping the connector splits the graph: structural fallback.
        let body = r#"{"nodes": 6, "edges": [[0, 1, 3.0], [0, 2, 3.0], [1, 2, 3.0], [3, 4, 3.0], [3, 5, 3.0], [4, 5, 3.0]]}"#;
        let resp = route(&request("POST", &push, body.as_bytes()), &ctx);
        let v = parse(&resp);
        assert_eq!(v.get("update_mode").and_then(Json::as_str), Some("rebuild"));
        assert_eq!(v.get("fallback").and_then(Json::as_str), Some("structural"));
        assert_eq!(cad_obs::counters::INCREMENTAL_UPDATES.get(), 1);
        assert_eq!(cad_obs::counters::REBUILD_FALLBACKS.get(), 1);
    }

    #[test]
    fn partitioned_session_reports_layout_on_push() {
        let _g = crate::test_lock();
        cad_obs::reset();
        let ctx = ctx();
        let resp = route(
            &request(
                "POST",
                "/v1/sequences",
                br#"{"nodes": 6, "engine": "exact", "delta": 0.4, "partition": {"blocks": 2, "mode": "components"}}"#,
            ),
            &ctx,
        );
        assert_eq!(resp.status, 201, "{:?}", parse(&resp));
        let id = parse(&resp).get("id").and_then(Json::as_u64).unwrap();
        let push = format!("/v1/sequences/{id}/snapshots");

        // Two triangles, no connector: two components, zero cut edges.
        let body = r#"{"nodes": 6, "edges": [[0, 1, 3.0], [0, 2, 3.0], [1, 2, 3.0], [3, 4, 3.0], [3, 5, 3.0], [4, 5, 3.0]]}"#;
        let resp = route(&request("POST", &push, body.as_bytes()), &ctx);
        assert_eq!(resp.status, 200, "{:?}", parse(&resp));
        let v = parse(&resp);
        let p = v.get("partition").expect("partition object");
        assert_eq!(p.get("blocks").and_then(Json::as_u64), Some(2));
        assert_eq!(p.get("boundary_edges").and_then(Json::as_u64), Some(0));

        // An unpartitioned session's push carries no partition field.
        let resp = route(&request("POST", "/v1/sequences", br#"{"nodes": 6}"#), &ctx);
        let id = parse(&resp).get("id").and_then(Json::as_u64).unwrap();
        let push = format!("/v1/sequences/{id}/snapshots");
        let resp = route(&request("POST", &push, body.as_bytes()), &ctx);
        assert_eq!(resp.status, 200);
        assert!(parse(&resp).get("partition").is_none());
    }

    #[test]
    fn node_out_of_range_is_the_structured_error() {
        let _g = crate::test_lock();
        cad_obs::reset();
        let ctx = ctx();
        let resp = route(&request("POST", "/v1/sequences", br#"{"nodes": 4}"#), &ctx);
        let id = parse(&resp).get("id").and_then(Json::as_u64).unwrap();
        let push = format!("/v1/sequences/{id}/snapshots");
        let resp = route(
            &request("POST", &push, br#"{"edges": [[0, 9, 1.0]]}"#),
            &ctx,
        );
        assert_eq!(resp.status, 422);
        let v = parse(&resp);
        let e = v.get("error").expect("error object");
        assert_eq!(
            e.get("code").and_then(|j| j.as_str()),
            Some("node_out_of_range")
        );
        // A declared vertex-set size that disagrees with the session is
        // rejected before any edge parsing.
        let resp = route(
            &request("POST", &push, br#"{"nodes": 9, "edges": []}"#),
            &ctx,
        );
        assert_eq!(resp.status, 422);
        let v = parse(&resp);
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("code"))
                .and_then(|j| j.as_str()),
            Some("mixed_node_counts")
        );
    }

    #[test]
    fn delta_bodies_apply_against_the_previous_snapshot() {
        let _g = crate::test_lock();
        cad_obs::reset();
        let ctx = ctx();
        let resp = route(
            &request(
                "POST",
                "/v1/sequences",
                br#"{"nodes": 6, "engine": "exact", "delta": 0.4}"#,
            ),
            &ctx,
        );
        let id = parse(&resp).get("id").and_then(Json::as_u64).unwrap();
        let push = format!("/v1/sequences/{id}/snapshots");

        // A delta with no base is refused with a pointed error.
        let resp = route(&delta_request(&push, b"\x00"), &ctx);
        assert_eq!(resp.status, 422);

        let resp = route(&request("POST", &push, snapshot_body(0.0).as_bytes()), &ctx);
        assert_eq!(resp.status, 200);

        // Now the bridge appears via a binary delta.
        let base = WeightedGraph::from_edges(
            6,
            &[
                (0, 1, 3.0),
                (0, 2, 3.0),
                (1, 2, 3.0),
                (3, 4, 3.0),
                (3, 5, 3.0),
                (4, 5, 3.0),
                (2, 3, 0.2),
            ],
        )
        .unwrap();
        let next = WeightedGraph::from_edges(
            6,
            &[
                (0, 1, 3.0),
                (0, 2, 3.0),
                (1, 2, 3.0),
                (3, 4, 3.0),
                (3, 5, 3.0),
                (4, 5, 3.0),
                (2, 3, 0.2),
                (0, 5, 1.5),
            ],
        )
        .unwrap();
        let body = cad_store::encode_edge_delta(&base, &next);
        let resp = route(&delta_request(&push, &body), &ctx);
        assert_eq!(resp.status, 200);
        let v = parse(&resp);
        let tr = v.get("transition").expect("transition");
        let edges = tr.get("edges").and_then(Json::as_arr).unwrap();
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].get("v").and_then(Json::as_u64), Some(5));

        // Garbage delta bytes are a 400, not a panic.
        let resp = route(&delta_request(&push, b"\xff\xff\xff\xff"), &ctx);
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn unknown_routes_and_methods_are_404_405() {
        let _g = crate::test_lock();
        cad_obs::reset();
        let ctx = ctx();
        assert_eq!(route(&request("GET", "/nope", b""), &ctx).status, 404);
        assert_eq!(
            route(&request("GET", "/v1/sequences", b""), &ctx).status,
            405
        );
        assert_eq!(route(&request("PUT", "/healthz", b""), &ctx).status, 405);
        assert_eq!(
            route(&request("GET", "/v1/sequences/abc", b""), &ctx).status,
            404
        );
        assert_eq!(
            route(&request("GET", "/v1/sequences/99", b""), &ctx).status,
            404
        );
        let resp = route(&request("GET", "/metrics", b""), &ctx);
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("serve_requests_total"), "{text}");
    }

    #[test]
    fn shutdown_endpoint_trips_the_drain_signal() {
        let _g = crate::test_lock();
        cad_obs::reset();
        let ctx = ctx();
        assert!(!ctx.shutdown.is_requested());
        let resp = route(&request("POST", "/v1/shutdown", b""), &ctx);
        assert_eq!(resp.status, 200);
        assert!(ctx.shutdown.is_requested());
    }

    #[test]
    fn requests_carry_trace_ids_into_the_flight_recorder() {
        let _g = crate::test_lock();
        cad_obs::reset();
        let ctx = ctx();
        let resp = route(
            &request(
                "POST",
                "/v1/sequences",
                br#"{"nodes": 6, "engine": "exact", "delta": 0.4}"#,
            ),
            &ctx,
        );
        let id = parse(&resp).get("id").and_then(Json::as_u64).unwrap();
        let push = format!("/v1/sequences/{id}/snapshots");
        let resp = route(&request("POST", &push, snapshot_body(0.0).as_bytes()), &ctx);
        assert_eq!(resp.status, 200);
        let trace_hex = resp
            .extra
            .iter()
            .find(|(k, _)| *k == "X-Cad-Trace-Id")
            .map(|(_, v)| v.clone())
            .expect("push response carries a trace id");
        assert_eq!(trace_hex.len(), 16);
        assert_eq!(
            resp.meta.trace_id,
            u64::from_str_radix(&trace_hex, 16).unwrap()
        );
        assert_eq!(resp.meta.session_id, id);
        assert_eq!(resp.meta.update_mode, Some("rebuild"));
        assert_eq!(resp.meta.engine, Some("exact"));

        let resp = route(&request("GET", "/v1/debug/trace?limit=64", b""), &ctx);
        assert_eq!(resp.status, 200);
        let v = parse(&resp);
        let events = v.get("events").and_then(Json::as_arr).expect("events");
        let of_trace: Vec<_> = events
            .iter()
            .filter(|e| e.get("trace_id").and_then(Json::as_str) == Some(trace_hex.as_str()))
            .collect();
        // The push's span pair and its request record all carry the id.
        assert!(
            of_trace.iter().any(
                |e| e.get("kind").and_then(Json::as_str) == Some("span_open")
                    && e.get("name").and_then(Json::as_str) == Some("push")
            ),
            "{of_trace:?}"
        );
        assert!(
            of_trace
                .iter()
                .any(|e| e.get("kind").and_then(Json::as_str) == Some("request")
                    && e.get("name").and_then(Json::as_str) == Some("push")
                    && e.get("detail").and_then(Json::as_u64) == Some(200)),
            "{of_trace:?}"
        );
        // A rebuild on the first push leaves an update event on the id.
        assert!(
            of_trace
                .iter()
                .any(|e| e.get("kind").and_then(Json::as_str) == Some("update")),
            "{of_trace:?}"
        );
        // All of it attributed to the session.
        assert!(of_trace
            .iter()
            .all(|e| e.get("session").and_then(Json::as_u64) == Some(id)));
    }

    #[test]
    fn debug_trace_respects_the_limit_parameter() {
        let _g = crate::test_lock();
        cad_obs::reset();
        let ctx = ctx();
        for _ in 0..5 {
            route(&request("GET", "/healthz", b""), &ctx);
        }
        let resp = route(&request("GET", "/v1/debug/trace?limit=3", b""), &ctx);
        let v = parse(&resp);
        assert_eq!(v.get("retained").and_then(Json::as_u64), Some(3));
        let events = v.get("events").and_then(Json::as_arr).unwrap();
        let seqs: Vec<u64> = events
            .iter()
            .map(|e| e.get("seq").and_then(Json::as_u64).unwrap())
            .collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "events come oldest-first");
    }

    #[test]
    fn debug_profile_serves_a_chrome_trace_timeline() {
        let _g = crate::test_lock();
        cad_obs::reset();
        let ctx = ctx();
        let resp = route(
            &request(
                "POST",
                "/v1/sequences",
                br#"{"nodes": 6, "engine": "exact", "delta": 0.4}"#,
            ),
            &ctx,
        );
        let id = parse(&resp).get("id").and_then(Json::as_u64).unwrap();
        let push = format!("/v1/sequences/{id}/snapshots");
        route(&request("POST", &push, snapshot_body(0.0).as_bytes()), &ctx);
        route(&request("POST", &push, snapshot_body(1.5).as_bytes()), &ctx);

        let resp = route(&request("GET", "/v1/debug/profile?limit=128", b""), &ctx);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, "application/json");
        let v = parse(&resp);
        assert_eq!(v.get("displayTimeUnit").and_then(Json::as_str), Some("ms"));
        let events = v
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        // The pushes above leave complete ("X") request events on the
        // timeline, each carrying a flow binding back to its trace id.
        assert!(
            events
                .iter()
                .any(|e| e.get("ph").and_then(Json::as_str) == Some("X")
                    && e.get("cat").and_then(Json::as_str) == Some("request")),
            "pushes should appear as complete events"
        );
        assert!(
            events
                .iter()
                .any(|e| e.get("bind_id").and_then(Json::as_str).is_some()),
            "request events should carry flow bindings"
        );
        assert_eq!(
            route(&request("POST", "/v1/debug/profile", b""), &ctx).status,
            405
        );
    }

    fn ctx_with(sessions: SessionMap) -> RouterCtx {
        RouterCtx {
            sessions,
            provider: None,
            shutdown: Arc::new(Shutdown::new()),
        }
    }

    fn tmp_journal_root(tag: &str) -> std::path::PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "cad-router-journal-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn rate_limited_pushes_get_429_with_retry_after() {
        let _g = crate::test_lock();
        cad_obs::reset();
        let ctx = ctx_with(SessionMap::new(8).with_push_rps(0.25));
        let resp = route(
            &request(
                "POST",
                "/v1/sequences",
                br#"{"nodes": 6, "engine": "exact", "delta": 0.4}"#,
            ),
            &ctx,
        );
        assert_eq!(resp.status, 201);
        let id = parse(&resp).get("id").and_then(Json::as_u64).unwrap();
        let push = format!("/v1/sequences/{id}/snapshots");

        // Burst of one: the first push spends the bucket...
        let resp = route(&request("POST", &push, snapshot_body(0.0).as_bytes()), &ctx);
        assert_eq!(resp.status, 200);
        // ...and the second is shed with the shared error schema.
        let resp = route(&request("POST", &push, snapshot_body(1.5).as_bytes()), &ctx);
        assert_eq!(resp.status, 429);
        let v = parse(&resp);
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("rate_limited")
        );
        let retry: u64 = resp
            .extra
            .iter()
            .find(|(k, _)| *k == "Retry-After")
            .map(|(_, v)| v.parse().unwrap())
            .expect("Retry-After header");
        assert!(retry >= 1, "{retry}");
        assert_eq!(cad_obs::counters::SERVE_RATE_LIMITED.get(), 1);
        // The session itself is untouched: no instance was consumed.
        let resp = route(&request("GET", &format!("/v1/sequences/{id}"), b""), &ctx);
        assert_eq!(
            parse(&resp).get("instances").and_then(Json::as_u64),
            Some(1)
        );
    }

    /// Push `bodies` into session `id` on `ctx`, returning each push's
    /// response body with the trailing `latency` object (wall-clock
    /// times — the sanctioned nondeterminism) scrubbed off. Everything
    /// left — ids, thresholds, scores at full 17-digit precision — must
    /// be bit-identical across a replay.
    fn push_all(ctx: &RouterCtx, id: u64, bodies: &[String]) -> Vec<String> {
        let push = format!("/v1/sequences/{id}/snapshots");
        bodies
            .iter()
            .map(|b| {
                let resp = route(&request("POST", &push, b.as_bytes()), ctx);
                assert_eq!(resp.status, 200, "{:?}", parse(&resp));
                let body = String::from_utf8(resp.body).unwrap();
                match body.find(",\"latency\"") {
                    Some(i) => body[..i].to_string(),
                    None => body,
                }
            })
            .collect()
    }

    #[test]
    fn journaled_session_replays_bit_identically_after_a_kill() {
        let _g = crate::test_lock();
        cad_obs::reset();
        let root = tmp_journal_root("kill");
        let cfg = cad_journal::JournalConfig {
            fsync: cad_journal::FsyncPolicy::Never,
            ..Default::default()
        };
        let spec = br#"{"nodes": 6, "engine": "exact", "delta": 0.4}"#;
        let bodies: Vec<String> = [0.0, 1.5, 2.5, 0.9, 3.1]
            .iter()
            .map(|&b| snapshot_body(b))
            .collect();

        // Control: one uninterrupted, unjournaled session.
        let control_ctx = ctx_with(SessionMap::new(8));
        let resp = route(&request("POST", "/v1/sequences", spec), &control_ctx);
        let control_id = parse(&resp).get("id").and_then(Json::as_u64).unwrap();
        let control = push_all(&control_ctx, control_id, &bodies);

        // Journaled run, killed (dropped without drain) after 2 pushes.
        let ctx = ctx_with(SessionMap::new(8).with_journal(root.clone(), cfg.clone()));
        let resp = route(&request("POST", "/v1/sequences", spec), &ctx);
        assert_eq!(resp.status, 201, "{:?}", parse(&resp));
        let id = parse(&resp).get("id").and_then(Json::as_u64).unwrap();
        assert_eq!(id, control_id, "same registry, same first id");
        let before = push_all(&ctx, id, &bodies[..2]);
        assert_eq!(before, control[..2].to_vec());
        drop(ctx);

        // Restart: recover, then push the remaining snapshots.
        let sessions = SessionMap::new(8).with_journal(root.clone(), cfg.clone());
        let n = crate::journal::recover_all(&root, &cfg, &sessions, None).unwrap();
        assert_eq!(n, 1);
        assert_eq!(cad_obs::counters::JOURNAL_RECOVERED_SESSIONS.get(), 1);
        let ctx = ctx_with(sessions);
        let resp = route(&request("GET", &format!("/v1/sequences/{id}"), b""), &ctx);
        assert_eq!(
            parse(&resp).get("instances").and_then(Json::as_u64),
            Some(2),
            "recovered session remembers its pushes"
        );
        let after = push_all(&ctx, id, &bodies[2..]);
        assert_eq!(
            after,
            control[2..].to_vec(),
            "replayed session must answer bit-identically"
        );

        // Delete tears the journal down; a restart finds nothing.
        let resp = route(
            &request("DELETE", &format!("/v1/sequences/{id}"), b""),
            &ctx,
        );
        assert_eq!(resp.status, 200);
        let sessions = SessionMap::new(8);
        assert_eq!(
            crate::journal::recover_all(&root, &cfg, &sessions, None).unwrap(),
            0
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn compaction_checkpoint_preserves_replay_equality() {
        let _g = crate::test_lock();
        cad_obs::reset();
        let root = tmp_journal_root("compact");
        // Tiny thresholds: every sweep wants to compact.
        let cfg = cad_journal::JournalConfig {
            fsync: cad_journal::FsyncPolicy::Never,
            max_segment_bytes: 256,
            compact_segments: 1,
            compact_bytes: 1,
        };
        let spec = br#"{"nodes": 6, "engine": "exact", "delta": 0.4}"#;
        let bodies: Vec<String> = [0.0, 1.5, 2.5, 0.9, 3.1, 0.0, 2.0]
            .iter()
            .map(|&b| snapshot_body(b))
            .collect();

        let control_ctx = ctx_with(SessionMap::new(8));
        let resp = route(&request("POST", "/v1/sequences", spec), &control_ctx);
        let control_id = parse(&resp).get("id").and_then(Json::as_u64).unwrap();
        let control = push_all(&control_ctx, control_id, &bodies);

        let ctx = ctx_with(SessionMap::new(8).with_journal(root.clone(), cfg.clone()));
        let resp = route(&request("POST", "/v1/sequences", spec), &ctx);
        let id = parse(&resp).get("id").and_then(Json::as_u64).unwrap();
        let before = push_all(&ctx, id, &bodies[..4]);
        assert_eq!(before, control[..4].to_vec());
        assert_eq!(ctx.sessions.compact_journals(), 1);
        assert_eq!(cad_obs::counters::JOURNAL_COMPACTIONS.get(), 1);
        drop(ctx);

        let sessions = SessionMap::new(8).with_journal(root.clone(), cfg.clone());
        assert_eq!(
            crate::journal::recover_all(&root, &cfg, &sessions, None).unwrap(),
            1
        );
        let ctx = ctx_with(sessions);
        let after = push_all(&ctx, id, &bodies[4..]);
        assert_eq!(
            after,
            control[4..].to_vec(),
            "checkpoint resume must not perturb later results"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn session_cap_returns_429_with_retry_after() {
        let _g = crate::test_lock();
        cad_obs::reset();
        let ctx = RouterCtx {
            sessions: SessionMap::new(1),
            provider: None,
            shutdown: Arc::new(Shutdown::new()),
        };
        assert_eq!(
            route(&request("POST", "/v1/sequences", br#"{"nodes": 4}"#), &ctx).status,
            201
        );
        let resp = route(&request("POST", "/v1/sequences", br#"{"nodes": 4}"#), &ctx);
        assert_eq!(resp.status, 429);
        assert!(resp.extra.iter().any(|(k, _)| *k == "Retry-After"));
    }
}
