//! Workload generators for the CAD reproduction.
//!
//! One module per evaluation dataset of the paper:
//!
//! * [`gmm`] — the quantitative synthetic benchmark of §4.1: Gaussian-
//!   mixture similarity graphs with planted inter-cluster noise edges and
//!   full node/edge ground truth (Figures 5 and 6).
//! * [`enron`] — a generative organizational-e-mail simulator standing in
//!   for the Enron corpus (§4.2.1, Figures 7–8): 151 employees with
//!   roles and teams, 48 monthly instances, and scripted scandal events
//!   whose responsible nodes are known.
//! * [`dblp`] — a co-authorship simulator standing in for DBLP (§4.2.2):
//!   research communities on an interest line, with planted community
//!   switches of graded severity and a severed-tie event.
//! * [`precip`] — a seasonal precipitation-field simulator standing in
//!   for the NOAA reanalysis data (§4.2.3, Figures 9–10): grid locations
//!   with regionally-coherent rainfall and a planted teleconnection event
//!   producing subtle but simultaneous shifts in distant regions.
//!
//! Every generator is deterministic given its seed and returns explicit
//! ground truth, turning the paper's anecdotal validations into
//! assertable tests (DESIGN.md §5 documents each substitution).

#![warn(missing_docs)]

pub mod dblp;
pub mod enron;
pub mod gmm;
pub mod precip;

pub use dblp::{DblpSim, DblpSimOptions};
pub use enron::{EnronSim, EnronSimOptions, Role};
pub use gmm::{GmmBenchmark, GmmBenchmarkOptions};
pub use precip::{PrecipSim, PrecipSimOptions};

/// Export a generated sequence as a `.cadpack` file (base snapshot +
/// per-transition deltas; see `cad-store`). Returns the bytes written.
///
/// The pack round-trips bit-identically, so detection on the exported
/// file matches detection on the in-memory sequence exactly — the
/// generators' determinism guarantee extends to the stored artifact.
pub fn export_pack(
    seq: &cad_graph::GraphSequence,
    path: &std::path::Path,
    label: &str,
) -> cad_store::Result<u64> {
    cad_store::write_pack(path, seq, label)
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, cad_graph::GraphError>;
