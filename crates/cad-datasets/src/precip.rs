//! Seasonal precipitation-field simulator standing in for the NOAA
//! world-precipitation reanalysis (paper §4.2.3, Figures 9–10;
//! DESIGN.md §5 substitution 4).
//!
//! Locations live on a latitude/longitude grid partitioned into
//! contiguous climate regions. Yearly (per fixed month, matching the
//! paper's per-month analysis) precipitation at a location is
//!
//! ```text
//! p(loc, year) = base(region) + interannual(region, year) + local noise
//! ```
//!
//! In one scripted *teleconnection year* (the La Niña analogue), a set of
//! distant regions shift coherently — some wetter, some drier — by an
//! amount **smaller** than the natural interannual swing of other
//! regions, which is exactly why per-location time-series thresholding
//! misses it (paper Figure 10) while the k-NN similarity graphs CAD
//! analyses restructure measurably (Figure 9).

use crate::Result;
use cad_graph::generators::knn::knn_kernel_graph_1d;
use cad_graph::{GraphError, GraphSequence};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Options for [`PrecipSim::generate`].
#[derive(Debug, Clone, Copy)]
pub struct PrecipSimOptions {
    /// Locations per region.
    pub region_size: usize,
    /// Number of climate regions.
    pub n_regions: usize,
    /// Number of yearly instances (paper: 21, 1982–2002).
    pub n_years: usize,
    /// Year of the teleconnection event.
    pub event_year: usize,
    /// Coherent event shift, in the same units as rainfall.
    pub event_shift: f64,
    /// Std-dev of natural *regionally coherent* interannual variation —
    /// small: climate regions are stable as a whole.
    pub interannual_std: f64,
    /// Std-dev of per-location year-to-year noise — large relative to
    /// the event shift: individual gauges are noisy, which is what hides
    /// the event from per-location time-series analysis (Figure 10)
    /// while leaving the kNN graph structure CAD sees mostly intact
    /// (noise shuffles neighbours *within* a region's value band).
    pub local_std: f64,
    /// Number of nearest neighbours for the similarity graphs.
    pub knn: usize,
    /// Gaussian kernel bandwidth σ.
    pub sigma: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PrecipSimOptions {
    fn default() -> Self {
        PrecipSimOptions {
            region_size: 40,
            n_regions: 10,
            n_years: 21,
            event_year: 13,
            event_shift: 0.7,
            interannual_std: 0.25,
            local_std: 0.35,
            knn: 10,
            sigma: 0.5,
            seed: 0x9A15,
        }
    }
}

/// The simulated precipitation network plus ground truth.
#[derive(Debug, Clone)]
pub struct PrecipSim {
    /// Yearly 10-NN similarity graphs.
    pub seq: GraphSequence,
    /// Region of every location.
    pub region: Vec<usize>,
    /// Raw precipitation values `[year][location]`.
    pub values: Vec<Vec<f64>>,
    /// Regions shifted wetter in the event year.
    pub wetter_regions: Vec<usize>,
    /// Regions shifted drier in the event year.
    pub drier_regions: Vec<usize>,
    /// The event year.
    pub event_year: usize,
}

impl PrecipSim {
    /// Generate the simulated sequence.
    pub fn generate(opts: &PrecipSimOptions) -> Result<Self> {
        if opts.n_regions < 6 {
            return Err(GraphError::InvalidInput(
                "need ≥ 6 regions for the event script".into(),
            ));
        }
        if opts.event_year == 0 || opts.event_year >= opts.n_years {
            return Err(GraphError::InvalidInput(format!(
                "event year {} outside (0, {})",
                opts.event_year, opts.n_years
            )));
        }
        if opts.event_shift >= 2.0 * (opts.interannual_std + opts.local_std) {
            return Err(GraphError::InvalidInput(
                "event shift must stay subtle relative to per-location variation".into(),
            ));
        }
        let n = opts.region_size * opts.n_regions;
        let region: Vec<usize> = (0..n).map(|i| i / opts.region_size).collect();
        let mut rng = StdRng::seed_from_u64(opts.seed);

        // Region base levels spread over a rainfall scale so regions
        // occupy distinct neighbourhoods in value space.
        let base: Vec<f64> = (0..opts.n_regions).map(|r| 2.0 + 1.5 * r as f64).collect();

        // Teleconnection: two regions get wetter, two get drier; the
        // regions adjacent to them in value space are the "reference"
        // regions whose similarity edges restructure.
        let wetter_regions = vec![0, 2];
        let drier_regions = vec![5, 8];

        let mut values = Vec::with_capacity(opts.n_years);
        for year in 0..opts.n_years {
            // Regional interannual variation (coherent within a region).
            let swing: Vec<f64> = (0..opts.n_regions)
                .map(|_| opts.interannual_std * gaussian(&mut rng))
                .collect();
            let mut v = Vec::with_capacity(n);
            for &r in region.iter() {
                let mut p = base[r] + swing[r] + opts.local_std * gaussian(&mut rng);
                if year == opts.event_year {
                    if wetter_regions.contains(&r) {
                        p += opts.event_shift;
                    } else if drier_regions.contains(&r) {
                        p -= opts.event_shift;
                    }
                }
                v.push(p.max(0.0));
            }
            values.push(v);
        }

        let graphs = values
            .iter()
            .map(|v| knn_kernel_graph_1d(v, opts.knn, opts.sigma))
            .collect::<Result<Vec<_>>>()?;

        Ok(PrecipSim {
            seq: GraphSequence::new(graphs)?,
            region,
            values,
            wetter_regions,
            drier_regions,
            event_year: opts.event_year,
        })
    }

    /// Locations in event-affected regions.
    pub fn affected_locations(&self) -> Vec<usize> {
        (0..self.region.len())
            .filter(|&loc| {
                self.wetter_regions.contains(&self.region[loc])
                    || self.drier_regions.contains(&self.region[loc])
            })
            .collect()
    }

    /// Year-over-year precipitation deltas for a location
    /// (`values[y+1][loc] − values[y][loc]`; the Figure 10 series).
    pub fn yoy_deltas(&self, loc: usize) -> Vec<f64> {
        self.values
            .windows(2)
            .map(|w| w[1][loc] - w[0][loc])
            .collect()
    }

    /// Mean year-over-year delta of a whole region at a given transition.
    pub fn region_mean_delta(&self, region: usize, t: usize) -> f64 {
        let members: Vec<usize> = (0..self.region.len())
            .filter(|&l| self.region[l] == region)
            .collect();
        members
            .iter()
            .map(|&l| self.values[t + 1][l] - self.values[t][l])
            .sum::<f64>()
            / members.len() as f64
    }
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> PrecipSim {
        PrecipSim::generate(&PrecipSimOptions::default()).unwrap()
    }

    #[test]
    fn structure() {
        let s = sim();
        assert_eq!(s.seq.n_nodes(), 400);
        assert_eq!(s.seq.len(), 21);
        assert_eq!(s.values.len(), 21);
        assert_eq!(s.affected_locations().len(), 4 * 40);
    }

    #[test]
    fn event_shift_is_subtle_per_location() {
        // The Figure 10 claim: at any single gauge, the event-year delta
        // is unremarkable next to the largest natural year-over-year
        // swings seen at other gauges/years.
        let s = sim();
        let event_t = s.event_year - 1;
        let event_locs = s.affected_locations();
        let mean_event_delta = event_locs
            .iter()
            .map(|&loc| s.yoy_deltas(loc)[event_t].abs())
            .sum::<f64>()
            / event_locs.len() as f64;
        let mut max_natural: f64 = 0.0;
        for loc in 0..s.region.len() {
            for (t, d) in s.yoy_deltas(loc).iter().enumerate() {
                if t != event_t && t != s.event_year {
                    max_natural = max_natural.max(d.abs());
                }
            }
        }
        assert!(
            mean_event_delta < max_natural,
            "event delta {mean_event_delta} should hide below natural max {max_natural}"
        );
    }

    #[test]
    fn event_moves_regions_coherently() {
        let s = sim();
        let t = s.event_year - 1;
        for &r in &s.wetter_regions {
            let d = s.region_mean_delta(r, t);
            assert!(d > 0.35, "wetter region {r} delta {d}");
        }
        for &r in &s.drier_regions {
            let d = s.region_mean_delta(r, t);
            assert!(d < -0.35, "drier region {r} delta {d}");
        }
    }

    #[test]
    fn graphs_are_knn_bounded() {
        let s = sim();
        let g = s.seq.graph(0);
        for u in 0..g.n_nodes() {
            assert!(g.degree_count(u) <= 20); // ≤ 2k with k = 10
        }
    }

    #[test]
    fn yoy_deltas_shape() {
        let s = sim();
        assert_eq!(s.yoy_deltas(0).len(), 20);
    }

    #[test]
    fn validation() {
        assert!(PrecipSim::generate(&PrecipSimOptions {
            n_regions: 3,
            ..Default::default()
        })
        .is_err());
        assert!(PrecipSim::generate(&PrecipSimOptions {
            event_year: 0,
            ..Default::default()
        })
        .is_err());
        assert!(PrecipSim::generate(&PrecipSimOptions {
            event_shift: 10.0,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn deterministic() {
        let a = sim();
        let b = sim();
        assert_eq!(a.values[5], b.values[5]);
    }
}
