//! The quantitative synthetic benchmark of paper §4.1.
//!
//! Protocol (paper wording in quotes):
//!
//! 1. "Draw `n` random samples from a 2-dimensional Gaussian mixture
//!    distribution with 4 components" and build `P(i,j) = exp(−d(i,j))`.
//! 2. "Perturb this adjacency matrix by adding a small amount of random
//!    noise *to the data*": re-kernelize jittered points into `Q`.
//! 3. Build a sparse symmetric noise matrix `R` with `U(0,1)` entries
//!    and set `A_1 = P`, `A_2 = Q + (R + Rᵀ)/2`.
//! 4. Ground truth: noise edges *between clusters* are anomalous (they
//!    tie distant nodes together — paper Case 2); intra-cluster noise is
//!    benign; a node is anomalous when incident to an anomalous edge.
//!
//! Two deliberate parameter adaptations (DESIGN.md §5):
//!
//! * kernel values below `kernel_floor` are dropped so `P`/`Q` stay
//!   sparse (the paper stores them densely);
//! * the noise matrix `R` is split into its two roles. The paper draws
//!   `R` uniformly over *all* pairs at 5% density — but then every node
//!   of a 2000-node graph is incident to ~100 inter-cluster noise edges,
//!   making *every* node ground-truth-anomalous and the node-level ROC
//!   the paper reports degenerate. What the experiment actually measures
//!   is whether a detector can tell *cluster-bridging* noise from
//!   *same-cluster* noise of identical magnitude. We therefore keep the
//!   paper's dense `U(0,1)` noise on intra-cluster pairs (5% density —
//!   every node is incident to many benign noise edges, which is what
//!   neutralizes ADJ) and plant only a small set of cross-cluster noise
//!   edges (`n/20` by default), whose endpoints are the anomalous nodes.

use crate::Result;
use cad_graph::generators::gmm::{sample_gmm, similarity_graph, GmmParams};
use cad_graph::{GraphBuilder, GraphError, GraphSequence};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Options for [`GmmBenchmark::generate`].
#[derive(Debug, Clone)]
pub struct GmmBenchmarkOptions {
    /// Number of sample points / graph nodes (paper: 2000).
    pub n: usize,
    /// Mixture layout.
    pub params: GmmParams,
    /// Std-dev of the coordinate jitter producing `Q` from `P`.
    pub perturb_std: f64,
    /// Probability that an intra-cluster pair receives a benign noise
    /// edge (the paper's `R` density, 0.05).
    pub intra_noise_density: f64,
    /// Number of planted cross-cluster (anomalous) noise edges.
    pub cross_noise_edges: usize,
    /// Kernel sparsification floor for `P` and `Q`.
    pub kernel_floor: f64,
    /// RNG seed.
    pub seed: u64,
}

impl GmmBenchmarkOptions {
    /// Defaults scaled for tests and CI (`n = 500`); pass `n = 2000` for
    /// the paper-size benchmark.
    pub fn with_n(n: usize) -> Self {
        GmmBenchmarkOptions {
            n,
            // Wider component separation than the generic default: the
            // clusters must be *weakly* coupled in aggregate (the kernel
            // floor prunes most inter-cluster pairs) or a single bridging
            // edge cannot change commute times measurably — the regime
            // the paper's Figure 4 layout depicts.
            params: GmmParams {
                means: vec![[0.0, 0.0], [10.0, 0.0], [0.0, 10.0], [10.0, 10.0]],
                std: 0.6,
            },
            perturb_std: 0.02,
            intra_noise_density: 0.05,
            cross_noise_edges: n / 20,
            kernel_floor: 1e-4,
            seed: 0x6A11,
        }
    }
}

impl Default for GmmBenchmarkOptions {
    fn default() -> Self {
        Self::with_n(500)
    }
}

/// One realization of the §4.1 benchmark.
#[derive(Debug, Clone)]
pub struct GmmBenchmark {
    /// The two-instance dynamic graph `(A_1, A_2)`.
    pub seq: GraphSequence,
    /// Mixture component of every node.
    pub component: Vec<usize>,
    /// Planted anomalous (inter-cluster noise) edges, `u < v`.
    pub anomalous_edges: Vec<(usize, usize)>,
    /// Planted benign (intra-cluster) noise edges, `u < v`.
    pub benign_noise_edges: Vec<(usize, usize)>,
    /// Ground-truth node labels (`true` = anomalous).
    pub node_labels: Vec<bool>,
}

impl GmmBenchmark {
    /// Generate one realization.
    pub fn generate(opts: &GmmBenchmarkOptions) -> Result<Self> {
        let _span = cad_obs::span!("dataset_gmm_generate", n = opts.n, seed = opts.seed);
        if opts.n < 8 {
            return Err(GraphError::InvalidInput(format!(
                "benchmark needs n ≥ 8, got {}",
                opts.n
            )));
        }
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let (points, component) = sample_gmm(opts.n, &opts.params, rng.random());

        // A_1 = P.
        let p = similarity_graph(&points, opts.kernel_floor)?;

        // Q: jitter the data, re-kernelize.
        let jittered: Vec<[f64; 2]> = points
            .iter()
            .map(|pt| {
                [
                    pt[0] + opts.perturb_std * gaussian(&mut rng),
                    pt[1] + opts.perturb_std * gaussian(&mut rng),
                ]
            })
            .collect();
        let q = similarity_graph(&jittered, opts.kernel_floor)?;

        // Plant the noise. Benign: dense U(0,1) noise on intra-cluster
        // pairs at the paper's 5% density, so every node carries plenty
        // of weight change. Anomalous: a small set of cross-cluster noise
        // edges of the same magnitude — the only thing separating the
        // ground-truth-anomalous nodes from the rest is *where* their
        // noise edges land, not how heavy they are.
        let mut anomalous_edges = Vec::new();
        let mut benign_noise_edges = Vec::new();
        let mut builder = GraphBuilder::with_capacity(opts.n, q.n_edges() + opts.n);
        builder.add_edges(q.edges())?;
        for u in 0..opts.n {
            for v in (u + 1)..opts.n {
                if component[u] == component[v] && rng.random::<f64>() < opts.intra_noise_density {
                    let w = rng.random::<f64>();
                    if w > 0.0 {
                        builder.add_edge(u, v, w)?;
                        benign_noise_edges.push((u, v));
                    }
                }
            }
        }
        let mut planted = std::collections::HashSet::new();
        let mut attempts = 0usize;
        while planted.len() < opts.cross_noise_edges && attempts < 100 * opts.cross_noise_edges {
            attempts += 1;
            let u = rng.random_range(0..opts.n);
            let mut v = rng.random_range(0..opts.n - 1);
            if v >= u {
                v += 1;
            }
            let key = (u.min(v), u.max(v));
            if component[key.0] == component[key.1] || !planted.insert(key) {
                continue;
            }
            let w = rng.random::<f64>();
            if w > 0.0 {
                builder.add_edge(key.0, key.1, w)?;
                anomalous_edges.push(key);
            }
        }
        let a2 = builder.build();

        let mut node_labels = vec![false; opts.n];
        for &(u, v) in &anomalous_edges {
            node_labels[u] = true;
            node_labels[v] = true;
        }

        anomalous_edges.sort_unstable();
        benign_noise_edges.sort_unstable();
        let seq = GraphSequence::new(vec![p, a2])?;
        Ok(GmmBenchmark {
            seq,
            component,
            anomalous_edges,
            benign_noise_edges,
            node_labels,
        })
    }

    /// Number of ground-truth anomalous nodes.
    pub fn n_anomalous_nodes(&self) -> usize {
        self.node_labels.iter().filter(|&&l| l).count()
    }
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GmmBenchmark {
        GmmBenchmark::generate(&GmmBenchmarkOptions::with_n(120)).unwrap()
    }

    #[test]
    fn shapes_and_labels_consistent() {
        let b = small();
        assert_eq!(b.seq.len(), 2);
        assert_eq!(b.seq.n_nodes(), 120);
        assert_eq!(b.component.len(), 120);
        assert_eq!(b.node_labels.len(), 120);
        // Every anomalous edge crosses clusters and labels its endpoints.
        for &(u, v) in &b.anomalous_edges {
            assert_ne!(b.component[u], b.component[v]);
            assert!(b.node_labels[u] && b.node_labels[v]);
        }
        for &(u, v) in &b.benign_noise_edges {
            assert_eq!(b.component[u], b.component[v]);
        }
        assert_eq!(b.anomalous_edges.len(), 120 / 20);
        // Dense intra-cluster noise: far more benign noise than anomalous.
        assert!(b.benign_noise_edges.len() > 10 * b.anomalous_edges.len());
    }

    #[test]
    fn noise_edges_present_only_at_t1() {
        let b = small();
        for &(u, v) in &b.anomalous_edges {
            let w0 = b.seq.graph(0).weight(u, v);
            let w1 = b.seq.graph(1).weight(u, v);
            assert!(
                w1 > w0,
                "noise edge ({u},{v}) should gain weight: {w0} → {w1}"
            );
        }
    }

    #[test]
    fn anomalous_fraction_moderate() {
        let b = GmmBenchmark::generate(&GmmBenchmarkOptions::with_n(400)).unwrap();
        let frac = b.n_anomalous_nodes() as f64 / 400.0;
        assert!(
            (0.01..=0.25).contains(&frac),
            "anomalous node fraction {frac} out of the useful ROC range"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.anomalous_edges, b.anomalous_edges);
        assert_eq!(a.node_labels, b.node_labels);
        let mut opts = GmmBenchmarkOptions::with_n(120);
        opts.seed = 999;
        let c = GmmBenchmark::generate(&opts).unwrap();
        assert_ne!(a.anomalous_edges, c.anomalous_edges);
    }

    #[test]
    fn background_graphs_are_similar() {
        // P and Q differ only by jitter: their edge weights on shared
        // support stay close.
        let b = small();
        let g0 = b.seq.graph(0);
        let g1 = b.seq.graph(1);
        let noise: std::collections::HashSet<(usize, usize)> = b
            .anomalous_edges
            .iter()
            .chain(&b.benign_noise_edges)
            .copied()
            .collect();
        let mut max_rel = 0.0f64;
        for (u, v, w) in g0.edges() {
            if noise.contains(&(u, v)) {
                continue;
            }
            let w1 = g1.weight(u, v);
            if w1 > 0.0 {
                max_rel = max_rel.max((w1 - w).abs() / w);
            }
        }
        assert!(max_rel < 0.5, "background drifted too much: {max_rel}");
    }

    #[test]
    fn rejects_tiny_n() {
        assert!(GmmBenchmark::generate(&GmmBenchmarkOptions::with_n(4)).is_err());
    }
}
