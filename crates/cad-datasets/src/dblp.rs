//! Co-authorship simulator standing in for the DBLP network
//! (paper §4.2.2; DESIGN.md §5 substitution 3).
//!
//! Authors belong to research communities arranged on an "interest line"
//! (community index = topic position), so the severity of a community
//! switch is measurable as the topic distance jumped. Yearly graphs give
//! co-authored paper counts. Three events mirror the paper's anecdotes:
//!
//! 1. **Far switch** — an author jumps from community `a` to a distant
//!    community (the Rountev software-engineering → HPC analogue);
//! 2. **Near switch** — an author moves to the *adjacent* community (the
//!    Orlando DB-performance → core-DB analogue), which must receive a
//!    *lower* CAD score than the far switch;
//! 3. **Severed tie** — two strongly-collaborating authors stop
//!    publishing together (the Brdiczka/Mühlhäuser analogue).

use crate::Result;
use cad_graph::{GraphBuilder, GraphError, GraphSequence};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Options for [`DblpSim::generate`].
#[derive(Debug, Clone, Copy)]
pub struct DblpSimOptions {
    /// Authors per community.
    pub community_size: usize,
    /// Number of communities on the interest line.
    pub n_communities: usize,
    /// Number of yearly instances (paper: 6, 2005–2010).
    pub n_years: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DblpSimOptions {
    fn default() -> Self {
        DblpSimOptions {
            community_size: 30,
            n_communities: 8,
            n_years: 6,
            seed: 0xDB20,
        }
    }
}

/// The simulated co-authorship network plus ground truth.
#[derive(Debug, Clone)]
pub struct DblpSim {
    /// Yearly graph instances.
    pub seq: GraphSequence,
    /// Community of every author (before any switch).
    pub community: Vec<usize>,
    /// The far-switching author, their target community, and the switch
    /// year (event 1).
    pub far_switcher: (usize, usize, usize),
    /// The near-switching author, their target community, and the switch
    /// year (event 2).
    pub near_switcher: (usize, usize, usize),
    /// The severed pair and the year the tie breaks (event 3).
    pub severed: (usize, usize, usize),
}

impl DblpSim {
    /// Generate the simulated sequence.
    pub fn generate(opts: &DblpSimOptions) -> Result<Self> {
        if opts.n_communities < 4 || opts.community_size < 6 {
            return Err(GraphError::InvalidInput(
                "need ≥ 4 communities of ≥ 6 authors for the scripted events".into(),
            ));
        }
        if opts.n_years < 3 {
            return Err(GraphError::InvalidInput("need ≥ 3 years".into()));
        }
        let n = opts.community_size * opts.n_communities;
        let community: Vec<usize> = (0..n).map(|i| i / opts.community_size).collect();
        let mut rng = StdRng::seed_from_u64(opts.seed);

        // Stable collaboration circles: each author has a fixed set of
        // in-community collaborators; a sparse set of cross-community
        // collaborations exists between adjacent communities.
        let mut circles: Vec<(usize, usize)> = Vec::new();
        for (i, &c) in community.iter().enumerate() {
            let base = c * opts.community_size;
            for _ in 0..3 {
                let j = base + rng.random_range(0..opts.community_size);
                if j != i {
                    circles.push((i.min(j), i.max(j)));
                }
            }
            // Occasional adjacent-community collaborator.
            if c + 1 < opts.n_communities && rng.random::<f64>() < 0.1 {
                let j = (c + 1) * opts.community_size + rng.random_range(0..opts.community_size);
                circles.push((i.min(j), i.max(j)));
            }
        }
        circles.sort_unstable();
        circles.dedup();

        // Events.
        let switch_year = opts.n_years / 2;
        let far_author = 0; // community 0
        let far_target = opts.n_communities - 1;
        let near_author = opts.community_size; // first author of community 1
        let near_target = 2;
        // A strongly-tied pair inside community 2 severs the year after.
        let severed_a = 2 * opts.community_size;
        let severed_b = 2 * opts.community_size + 1;
        let severed_year = (switch_year + 1).min(opts.n_years - 1);

        // New collaborators in the target communities.
        let far_new: Vec<usize> = (0..4)
            .map(|k| far_target * opts.community_size + k)
            .collect();
        let near_new: Vec<usize> = (0..4)
            .map(|k| near_target * opts.community_size + k)
            .collect();

        let mut graphs = Vec::with_capacity(opts.n_years);
        for year in 0..opts.n_years {
            let mut b = GraphBuilder::with_capacity(n, circles.len() + 16);
            for &(i, j) in &circles {
                // Severed tie: the strong pair stops collaborating.
                if (i, j) == (severed_a, severed_b) && year >= severed_year {
                    continue;
                }
                let papers = 1 + poisson(1.0, &mut rng);
                b.add_edge(i, j, papers as f64)?;
            }
            // The severed pair collaborates heavily before the break.
            if year < severed_year {
                b.add_edge(severed_a, severed_b, 4.0 + poisson(1.0, &mut rng) as f64)?;
            }
            // Switch events: new strong cross-community edges from the
            // switch year on.
            if year >= switch_year {
                for &j in &far_new {
                    b.add_edge(far_author, j, 2.0 + poisson(1.0, &mut rng) as f64)?;
                }
                for &j in &near_new {
                    b.add_edge(near_author, j, 2.0 + poisson(1.0, &mut rng) as f64)?;
                }
            }
            graphs.push(b.build());
        }

        Ok(DblpSim {
            seq: GraphSequence::new(graphs)?,
            community,
            far_switcher: (far_author, far_target, switch_year),
            near_switcher: (near_author, near_target, switch_year),
            severed: (severed_a, severed_b, severed_year),
        })
    }

    /// Topic distance (communities jumped) of the two switch events.
    pub fn switch_distances(&self) -> (usize, usize) {
        let far = self
            .far_switcher
            .1
            .abs_diff(self.community[self.far_switcher.0]);
        let near = self
            .near_switcher
            .1
            .abs_diff(self.community[self.near_switcher.0]);
        (far, near)
    }
}

fn poisson(lambda: f64, rng: &mut StdRng) -> u32 {
    let l = (-lambda).exp();
    let (mut k, mut p) = (0u32, 1.0);
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> DblpSim {
        DblpSim::generate(&DblpSimOptions::default()).unwrap()
    }

    #[test]
    fn structure() {
        let s = sim();
        assert_eq!(s.seq.n_nodes(), 240);
        assert_eq!(s.seq.len(), 6);
        let (far, near) = s.switch_distances();
        assert!(
            far > near,
            "far switch {far} must jump more communities than near {near}"
        );
        assert_eq!(near, 1);
    }

    #[test]
    fn switch_edges_appear_at_switch_year() {
        let s = sim();
        let (author, target, year) = s.far_switcher;
        let target_base = target * 30;
        let before = s.seq.graph(year - 1).weight(author, target_base);
        let after = s.seq.graph(year).weight(author, target_base);
        assert_eq!(before, 0.0);
        assert!(after >= 2.0);
    }

    #[test]
    fn severed_tie_breaks() {
        let s = sim();
        let (a, b, year) = s.severed;
        assert!(s.seq.graph(year - 1).weight(a, b) >= 4.0);
        assert_eq!(s.seq.graph(year).weight(a, b), 0.0);
    }

    #[test]
    fn communities_are_cohesive() {
        let s = sim();
        let g = s.seq.graph(0);
        let (mut intra, mut inter) = (0usize, 0usize);
        for (u, v, _) in g.edges() {
            if s.community[u] == s.community[v] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 5 * inter, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn deterministic_and_validated() {
        let a = sim();
        let b = sim();
        assert_eq!(a.seq.graph(3).n_edges(), b.seq.graph(3).n_edges());
        assert!(DblpSim::generate(&DblpSimOptions {
            n_communities: 2,
            ..Default::default()
        })
        .is_err());
        assert!(DblpSim::generate(&DblpSimOptions {
            n_years: 2,
            ..Default::default()
        })
        .is_err());
    }
}
