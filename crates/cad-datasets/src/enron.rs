//! Organizational-e-mail simulator standing in for the Enron corpus
//! (paper §4.2.1, Figures 7–8; DESIGN.md §5 substitution 2).
//!
//! 151 employees with roles (CEO, incoming CEO, the CEO's assistant,
//! executives, legal counsel, traders, staff) and four departments.
//! Baseline communication rates depend on team/role affinity; each of
//! the 48 monthly graphs draws edge weights (e-mail counts) from Poisson
//! distributions around those rates. On top of the stationary baseline,
//! four scandal events are scripted to mirror the timeline the paper
//! verifies against:
//!
//! | month | event                                   | analogue                     |
//! |-------|------------------------------------------|------------------------------|
//! | 12    | a trader suddenly contacts many traders | Chris Germany (Oct–Nov 1999) |
//! | 24    | the CEO's assistant contacts executives  | Rosalie Fleming (Dec 2000)   |
//! | 33    | the CEO erupts, e-mailing all roles      | Kenneth Lay (Jul–Aug 2001)   |
//! | 35–39 | legal + executives crisis storm          | bankruptcy period            |
//!
//! Unlike the real corpus, the simulator knows exactly which nodes are
//! *responsible* for each structural change, so the paper's anecdotal
//! verification becomes an assertable ground truth.

use crate::Result;
use cad_graph::{GraphBuilder, GraphError, GraphSequence, WeightedGraph};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Employee role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The chief executive (node 0) — the Kenneth Lay analogue.
    Ceo,
    /// The incoming chief executive (node 1) — the Jeff Skilling analogue.
    IncomingCeo,
    /// The CEO's assistant (node 2) — the Rosalie Fleming analogue.
    Assistant,
    /// Presidents / vice presidents.
    Executive,
    /// Legal counsel.
    Legal,
    /// Traders.
    Trader,
    /// Everyone else.
    Staff,
}

/// A scripted anomalous event with known responsible nodes.
#[derive(Debug, Clone)]
pub struct ScriptedEvent {
    /// Short name used in experiment output.
    pub name: &'static str,
    /// First month (0-based) the event is active; the anomalous
    /// transition is `month − 1 → month`.
    pub month: usize,
    /// Number of consecutive active months.
    pub duration: usize,
    /// Nodes responsible for the structural change.
    pub responsible: Vec<usize>,
    /// The extra edges the event injects (endpoints, monthly rate).
    pub edges: Vec<(usize, usize, f64)>,
}

/// Options for [`EnronSim::generate`].
#[derive(Debug, Clone, Copy)]
pub struct EnronSimOptions {
    /// Number of employees (paper: 151).
    pub n_employees: usize,
    /// Number of monthly instances (paper: 48).
    pub n_months: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EnronSimOptions {
    fn default() -> Self {
        EnronSimOptions {
            n_employees: 151,
            n_months: 48,
            seed: 11,
        }
    }
}

/// The simulated organizational e-mail network.
#[derive(Debug, Clone)]
pub struct EnronSim {
    /// Monthly graph instances.
    pub seq: GraphSequence,
    /// Role of every employee.
    pub roles: Vec<Role>,
    /// Department (0–3) of every employee.
    pub department: Vec<usize>,
    /// The scripted ground-truth events.
    pub events: Vec<ScriptedEvent>,
}

impl EnronSim {
    /// Node index of the CEO.
    pub const CEO: usize = 0;
    /// Node index of the incoming CEO.
    pub const INCOMING_CEO: usize = 1;
    /// Node index of the assistant.
    pub const ASSISTANT: usize = 2;

    /// Generate the simulated sequence.
    pub fn generate(opts: &EnronSimOptions) -> Result<Self> {
        let n = opts.n_employees;
        if n < 40 {
            return Err(GraphError::InvalidInput(format!(
                "simulator needs ≥ 40 employees for the role mix, got {n}"
            )));
        }
        if opts.n_months < 2 {
            return Err(GraphError::InvalidInput("need at least 2 months".into()));
        }

        let roles = assign_roles(n);
        let department: Vec<usize> = (0..n).map(|i| i % 4).collect();
        let mut rng = StdRng::seed_from_u64(opts.seed);

        // Stationary baseline: everyone communicates with a small fixed
        // circle, not their entire department — the real corpus has only
        // a few hundred edges per month over the 151 employees.
        let base = baseline_circles(n, &roles, &department, &mut rng);

        let events = script_events(n, opts.n_months, &roles, &mut rng);

        // Sample each month: Poisson counts around the active rates.
        let mut graphs = Vec::with_capacity(opts.n_months);
        for month in 0..opts.n_months {
            let mut b = GraphBuilder::with_capacity(n, base.len());
            for &(i, j, rate) in &base {
                // Contact circles are *persistent*: regular contacts
                // exchange at least one e-mail a month, with Poisson
                // fluctuation on top. Without the floor, weak ties
                // flicker in and out of existence every month and the
                // resulting structural churn drowns the scripted events
                // (real e-mail circles are stable; random churn is not
                // what the paper's anomalies look like).
                let c = 1 + poisson((rate - 1.0).max(0.1), &mut rng);
                b.add_edge(i, j, c as f64)?;
            }
            for ev in &events {
                if month >= ev.month && month < ev.month + ev.duration {
                    for &(i, j, rate) in &ev.edges {
                        // Event contacts persist for the event's whole
                        // duration; the anomaly is their appearance and
                        // disappearance, not mid-event flicker.
                        let c = 1 + poisson((rate - 1.0).max(0.1), &mut rng);
                        b.add_edge(i, j, c as f64)?;
                    }
                }
            }
            graphs.push(b.build());
        }

        Ok(EnronSim {
            seq: GraphSequence::new(graphs)?,
            roles,
            department,
            events,
        })
    }

    /// Total e-mail volume of a node per month (Figure 8a histogram).
    pub fn monthly_volume(&self, node: usize) -> Vec<f64> {
        self.seq.graphs().iter().map(|g| g.degree(node)).collect()
    }

    /// Nodes responsible for structural change at transition `t → t+1`
    /// (events starting or ending at month `t+1`).
    pub fn responsible_at_transition(&self, t: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for ev in &self.events {
            if ev.month == t + 1 || ev.month + ev.duration == t + 1 {
                out.extend_from_slice(&ev.responsible);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Transitions at which some event starts or ends.
    pub fn anomalous_transitions(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .events
            .iter()
            .flat_map(|ev| [ev.month.saturating_sub(1), ev.month + ev.duration - 1])
            .filter(|&t| t + 1 < self.seq.len())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Ego subgraph of `node` at month `t`: its incident edges.
    pub fn ego_edges(&self, node: usize, t: usize) -> Vec<(usize, f64)> {
        self.seq.graph(t).neighbors(node).collect()
    }
}

fn assign_roles(n: usize) -> Vec<Role> {
    (0..n)
        .map(|i| match i {
            0 => Role::Ceo,
            1 => Role::IncomingCeo,
            2 => Role::Assistant,
            3..=10 => Role::Executive,
            11..=22 => Role::Legal,
            i if i <= 22 + (n - 23) / 2 => Role::Trader,
            _ => Role::Staff,
        })
        .collect()
}

/// Stationary communication circles: `(i, j, monthly rate)` triples.
fn baseline_circles(
    n: usize,
    roles: &[Role],
    dept: &[usize],
    rng: &mut StdRng,
) -> Vec<(usize, usize, f64)> {
    let mut rates: std::collections::HashMap<(usize, usize), f64> =
        std::collections::HashMap::new();
    let mut bump = |i: usize, j: usize, r: f64| {
        if i != j {
            let key = (i.min(j), i.max(j));
            let e = rates.entry(key).or_insert(0.0);
            *e = e.max(r);
        }
    };

    // Leadership clique.
    let executives: Vec<usize> = (0..n).filter(|&i| roles[i] == Role::Executive).collect();
    bump(EnronSim::CEO, EnronSim::ASSISTANT, 6.0);
    bump(EnronSim::CEO, EnronSim::INCOMING_CEO, 3.0);
    for &e in &executives {
        bump(EnronSim::CEO, e, 2.0);
        bump(EnronSim::INCOMING_CEO, e, 1.5);
    }
    for (ai, &a) in executives.iter().enumerate() {
        for &b in &executives[ai + 1..] {
            bump(a, b, 2.0);
        }
    }
    // Legal counsel pairs up sparsely.
    let legal: Vec<usize> = (0..n).filter(|&i| roles[i] == Role::Legal).collect();
    for (ai, &a) in legal.iter().enumerate() {
        for &b in &legal[ai + 1..] {
            if rng.random::<f64>() < 0.3 {
                bump(a, b, 1.5);
            }
        }
    }
    // Everyone keeps a small circle inside their department.
    let by_dept: Vec<Vec<usize>> = (0..4)
        .map(|d| (3..n).filter(|&i| dept[i] == d).collect())
        .collect();
    for i in 3..n {
        let pool = &by_dept[dept[i]];
        for _ in 0..3 {
            let j = pool[rng.random_range(0..pool.len())];
            bump(i, j, 2.0);
        }
        // Rare cross-department contact.
        if rng.random::<f64>() < 0.15 {
            let d2 = (dept[i] + 1 + rng.random_range(0..3)) % 4;
            let pool2 = &by_dept[d2];
            bump(i, pool2[rng.random_range(0..pool2.len())], 0.8);
        }
    }
    // HashMap order is nondeterministic; sort so the per-month Poisson
    // draws are consumed in a fixed order and the simulator is
    // reproducible for a given seed.
    let mut out: Vec<(usize, usize, f64)> =
        rates.into_iter().map(|((i, j), r)| (i, j, r)).collect();
    out.sort_unstable_by_key(|a| (a.0, a.1));
    out
}

fn script_events(
    n: usize,
    n_months: usize,
    roles: &[Role],
    rng: &mut StdRng,
) -> Vec<ScriptedEvent> {
    let traders: Vec<usize> = (0..n).filter(|&i| roles[i] == Role::Trader).collect();
    let executives: Vec<usize> = (0..n).filter(|&i| roles[i] == Role::Executive).collect();
    let legal: Vec<usize> = (0..n).filter(|&i| roles[i] == Role::Legal).collect();
    let everyone: Vec<usize> = (3..n).collect();

    let mut events = Vec::new();

    // Month 12: a trader bursts into contact with many other traders.
    let burst_trader = traders[0];
    let mut edges = Vec::new();
    for &t in pick(&traders[1..], 15, rng).iter() {
        edges.push((burst_trader.min(t), burst_trader.max(t), 2.5));
    }
    events.push(ScriptedEvent {
        name: "trader-burst",
        month: 12.min(n_months - 1),
        duration: 2,
        responsible: vec![burst_trader],
        edges,
    });

    // Month 24: the assistant reaches out to people far from her usual
    // orbit — traders and staff across departments. (Contacting the
    // executives she already reaches through the CEO every day would not
    // change the graph's structure, and no method should flag it.)
    let staff: Vec<usize> = (0..n).filter(|&i| roles[i] == Role::Staff).collect();
    let mut edges = Vec::new();
    for &e in pick(&traders[5..], 6, rng)
        .iter()
        .chain(pick(&staff, 6, rng).iter())
    {
        edges.push((EnronSim::ASSISTANT.min(e), EnronSim::ASSISTANT.max(e), 2.0));
    }
    events.push(ScriptedEvent {
        name: "assistant-outreach",
        month: 24.min(n_months - 1),
        duration: 2,
        responsible: vec![EnronSim::ASSISTANT],
        edges,
    });

    // Month 33: the CEO erupts across all roles (Figure 8).
    let mut edges = Vec::new();
    for &e in pick(&everyone, 40, rng).iter() {
        edges.push((EnronSim::CEO, e, 3.0));
    }
    events.push(ScriptedEvent {
        name: "ceo-eruption",
        month: 33.min(n_months - 1),
        duration: 3,
        responsible: vec![EnronSim::CEO],
        edges,
    });

    // Month 33, same time as the eruption: an executive's e-mail volume
    // with his *existing* contacts multiplies (the James Steffes
    // analogue). A pure volume surge between already-tight contacts is
    // NOT a structural anomaly — the paper's point is that ACT ranks
    // this above the CEO while CAD correctly discounts it — so its
    // responsible set is empty.
    let surge_exec = executives[0];
    let edges: Vec<(usize, usize, f64)> = executives[1..5]
        .iter()
        .map(|&e| (surge_exec.min(e), surge_exec.max(e), 18.0))
        .collect();
    events.push(ScriptedEvent {
        name: "exec-volume-surge",
        month: 33.min(n_months - 1),
        duration: 3,
        responsible: vec![],
        edges,
    });

    // Months 35–39: legal/executive crisis storm.
    let mut edges = Vec::new();
    let mut responsible = Vec::new();
    for &l in legal.iter().take(8) {
        for &e in executives.iter().take(4) {
            edges.push((l.min(e), l.max(e), 2.0));
        }
        responsible.push(l);
    }
    responsible.extend(executives.iter().take(4));
    events.push(ScriptedEvent {
        name: "legal-storm",
        month: 35.min(n_months - 1),
        duration: 5,
        responsible,
        edges,
    });

    events.retain(|e| e.month + e.duration <= n_months);
    events
}

/// Sample `k` distinct items (or all when fewer) from `pool`.
fn pick(pool: &[usize], k: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut idx: Vec<usize> = pool.to_vec();
    // Partial Fisher–Yates.
    let k = k.min(idx.len());
    for i in 0..k {
        let j = i + rng.random_range(0..idx.len() - i);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

/// Knuth's Poisson sampler (rates here are all small).
fn poisson(lambda: f64, rng: &mut StdRng) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // Guard against pathological rates.
        }
    }
}

/// Expose the monthly graph type for doc examples.
pub type MonthlyGraph = WeightedGraph;

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> EnronSim {
        EnronSim::generate(&EnronSimOptions::default()).unwrap()
    }

    #[test]
    fn dimensions_match_paper() {
        let s = sim();
        assert_eq!(s.seq.n_nodes(), 151);
        assert_eq!(s.seq.len(), 48);
        assert_eq!(s.roles.len(), 151);
        assert_eq!(s.roles[0], Role::Ceo);
        assert_eq!(s.roles[2], Role::Assistant);
        // Sparse like the real data: a few hundred edges per instance.
        let m = s.seq.mean_edges();
        assert!(m > 100.0 && m < 800.0, "mean edges {m}");
    }

    #[test]
    fn ceo_volume_spikes_at_eruption() {
        let s = sim();
        let vol = s.monthly_volume(EnronSim::CEO);
        let calm_mean: f64 = vol[..30].iter().sum::<f64>() / 30.0;
        assert!(
            vol[33] > 2.0 * calm_mean,
            "eruption month volume {} vs calm mean {calm_mean}",
            vol[33]
        );
        // Back to calm at the end.
        let late_mean: f64 = vol[40..].iter().sum::<f64>() / 8.0;
        assert!(late_mean < 1.5 * calm_mean);
    }

    #[test]
    fn events_cover_expected_months() {
        let s = sim();
        let months: Vec<usize> = s.events.iter().map(|e| e.month).collect();
        assert_eq!(months, vec![12, 24, 33, 33, 35]);
        // The volume surge is a confounder, not an anomaly.
        let surge = s
            .events
            .iter()
            .find(|e| e.name == "exec-volume-surge")
            .unwrap();
        assert!(surge.responsible.is_empty());
        // CEO eruption transition is 32 → 33.
        assert!(s.responsible_at_transition(32).contains(&EnronSim::CEO));
        // Calm transition has no responsible nodes.
        assert!(s.responsible_at_transition(5).is_empty());
    }

    #[test]
    fn anomalous_transitions_listed() {
        let s = sim();
        let at = s.anomalous_transitions();
        assert!(at.contains(&11), "trader burst start (11→12): {at:?}");
        assert!(at.contains(&32), "CEO eruption start (32→33): {at:?}");
        // All within range.
        assert!(at.iter().all(|&t| t < 47));
    }

    #[test]
    fn eruption_adds_ceo_edges() {
        let s = sim();
        let before = s.ego_edges(EnronSim::CEO, 32).len();
        let during = s.ego_edges(EnronSim::CEO, 33).len();
        assert!(
            during > before + 15,
            "CEO neighbours {before} → {during}; eruption should add many"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = sim();
        let b = sim();
        assert_eq!(a.seq.graph(33).n_edges(), b.seq.graph(33).n_edges());
        assert_eq!(
            a.monthly_volume(EnronSim::CEO),
            b.monthly_volume(EnronSim::CEO)
        );
    }

    #[test]
    fn rejects_bad_options() {
        assert!(EnronSim::generate(&EnronSimOptions {
            n_employees: 10,
            ..Default::default()
        })
        .is_err());
        assert!(EnronSim::generate(&EnronSimOptions {
            n_months: 1,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn role_mix_reasonable() {
        let s = sim();
        let traders = s.roles.iter().filter(|&&r| r == Role::Trader).count();
        let staff = s.roles.iter().filter(|&&r| r == Role::Staff).count();
        let legal = s.roles.iter().filter(|&&r| r == Role::Legal).count();
        assert!(traders > 30);
        assert!(staff > 30);
        assert_eq!(legal, 12);
    }
}
