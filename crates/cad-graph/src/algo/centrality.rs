//! Node centrality measures.
//!
//! The CLC baseline of the paper (§4) scores nodes by the change in their
//! *closeness centrality* between consecutive graph instances. We provide
//! the Wasserman–Faust-normalized closeness (well-defined on disconnected
//! graphs) plus harmonic centrality, a common alternative that handles
//! disconnection without normalization tricks.

use crate::algo::shortest_path::dijkstra;
use crate::graph::WeightedGraph;

/// Closeness centrality of every node, Wasserman–Faust normalized:
///
/// `cc(i) = ((r_i − 1) / (n − 1)) · ((r_i − 1) / Σ_{j reachable} d(i, j))`
///
/// where `r_i` is the number of nodes reachable from `i` (including
/// itself). Isolated nodes score 0. Edge lengths are `1/weight` (see
/// [`crate::algo::shortest_path`]).
pub fn closeness_centrality(g: &WeightedGraph) -> Vec<f64> {
    let n = g.n_nodes();
    if n <= 1 {
        return vec![0.0; n];
    }
    (0..n)
        .map(|i| {
            let dist = dijkstra(g, i);
            let mut sum = 0.0;
            let mut reachable = 0usize;
            for (j, &d) in dist.iter().enumerate() {
                if j != i && d.is_finite() {
                    sum += d;
                    reachable += 1;
                }
            }
            if reachable == 0 || sum == 0.0 {
                0.0
            } else {
                let r = reachable as f64;
                (r / (n as f64 - 1.0)) * (r / sum)
            }
        })
        .collect()
}

/// Harmonic centrality `h(i) = Σ_{j≠i} 1/d(i, j)` (with `1/∞ = 0`),
/// normalized by `n − 1`.
pub fn harmonic_centrality(g: &WeightedGraph) -> Vec<f64> {
    let n = g.n_nodes();
    if n <= 1 {
        return vec![0.0; n];
    }
    (0..n)
        .map(|i| {
            let dist = dijkstra(g, i);
            let s: f64 = dist
                .iter()
                .enumerate()
                .filter(|&(j, d)| j != i && d.is_finite() && *d > 0.0)
                .map(|(_, d)| 1.0 / d)
                .sum();
            s / (n as f64 - 1.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_center_most_central() {
        let g = WeightedGraph::from_edges(5, &[(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0), (0, 4, 1.0)])
            .unwrap();
        let cc = closeness_centrality(&g);
        assert!(cc[0] > cc[1]);
        assert!((cc[1] - cc[2]).abs() < 1e-12);
        let h = harmonic_centrality(&g);
        assert!(h[0] > h[1]);
    }

    #[test]
    fn closeness_of_unit_star_center_is_one() {
        // Center at distance 1 from all leaves: cc = (n-1)/Σd = 1.
        let g = WeightedGraph::from_edges(4, &[(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0)]).unwrap();
        let cc = closeness_centrality(&g);
        assert!((cc[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_node_scores_zero() {
        let g = WeightedGraph::from_edges(3, &[(0, 1, 1.0)]).unwrap();
        let cc = closeness_centrality(&g);
        assert_eq!(cc[2], 0.0);
        let h = harmonic_centrality(&g);
        assert_eq!(h[2], 0.0);
    }

    #[test]
    fn disconnected_components_penalized() {
        // Two triangles: every node reaches only 2 of 5 others, so the
        // WF correction scales closeness down versus one 6-cycle... just
        // check values are finite, positive, equal within a component.
        let g = WeightedGraph::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 2, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (3, 5, 1.0),
            ],
        )
        .unwrap();
        let cc = closeness_centrality(&g);
        assert!(cc.iter().all(|&v| v.is_finite() && v > 0.0));
        assert!((cc[0] - cc[3]).abs() < 1e-12);
    }

    #[test]
    fn stronger_ties_raise_centrality() {
        let weak = WeightedGraph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let strong = WeightedGraph::from_edges(3, &[(0, 1, 2.0), (1, 2, 2.0)]).unwrap();
        let cw = closeness_centrality(&weak);
        let cs = closeness_centrality(&strong);
        assert!(cs[1] > cw[1]);
    }

    #[test]
    fn trivial_graphs() {
        let g = WeightedGraph::from_edges(1, &[]).unwrap();
        assert_eq!(closeness_centrality(&g), vec![0.0]);
        assert_eq!(harmonic_centrality(&g), vec![0.0]);
    }
}
