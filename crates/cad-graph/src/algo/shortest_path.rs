//! Weighted shortest paths.
//!
//! The graphs in this workspace use *similarity* weights: a larger weight
//! means a stronger tie (more e-mails, more co-authored papers, closer
//! precipitation values). Shortest-path distance therefore traverses edge
//! *lengths* `1 / w`, the standard conversion for closeness centrality on
//! similarity graphs.

use crate::graph::WeightedGraph;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Max-heap entry ordered by smallest distance first.
#[derive(Debug, PartialEq)]
struct HeapItem {
    dist: f64,
    node: usize,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so BinaryHeap pops the smallest distance. Distances are
        // finite non-NaN by construction (weights validated positive).
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Single-source shortest path distances with edge length `1/weight`.
///
/// Unreachable nodes get `f64::INFINITY`.
pub fn dijkstra(g: &WeightedGraph, source: usize) -> Vec<f64> {
    let n = g.n_nodes();
    let mut dist = vec![f64::INFINITY; n];
    if source >= n {
        return dist;
    }
    dist[source] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapItem {
        dist: 0.0,
        node: source,
    });
    while let Some(HeapItem { dist: d, node: u }) = heap.pop() {
        if d > dist[u] {
            continue; // Stale entry.
        }
        for (v, w) in g.neighbors(u) {
            debug_assert!(w > 0.0, "stored weights are positive");
            let nd = d + 1.0 / w;
            if nd < dist[v] {
                dist[v] = nd;
                heap.push(HeapItem { dist: nd, node: v });
            }
        }
    }
    dist
}

/// All-pairs shortest paths by repeated Dijkstra (`O(n·m log n)`).
///
/// Only used on small graphs (tests, CLC on modest instances); row `i`
/// is the distance vector from source `i`.
pub fn dijkstra_all_pairs(g: &WeightedGraph) -> Vec<Vec<f64>> {
    (0..g.n_nodes()).map(|s| dijkstra(g, s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_graph_distances() {
        // 0 -1- 1 -2- 2: lengths 1 and 0.5.
        let g = WeightedGraph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0)]).unwrap();
        let d = dijkstra(&g, 0);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[1], 1.0);
        assert_eq!(d[2], 1.5);
    }

    #[test]
    fn heavier_edges_are_shorter() {
        // Two routes 0→2: direct w=0.5 (length 2) vs via 1 with w=2 each
        // (length 0.5+0.5=1). The strong two-hop route wins.
        let g = WeightedGraph::from_edges(3, &[(0, 2, 0.5), (0, 1, 2.0), (1, 2, 2.0)]).unwrap();
        let d = dijkstra(&g, 0);
        assert_eq!(d[2], 1.0);
    }

    #[test]
    fn unreachable_is_infinite() {
        let g = WeightedGraph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let d = dijkstra(&g, 0);
        assert!(d[2].is_infinite());
        assert!(d[3].is_infinite());
    }

    #[test]
    fn out_of_range_source() {
        let g = WeightedGraph::from_edges(2, &[(0, 1, 1.0)]).unwrap();
        let d = dijkstra(&g, 5);
        assert!(d.iter().all(|x| x.is_infinite()));
    }

    #[test]
    fn all_pairs_symmetric() {
        let g =
            WeightedGraph::from_edges(4, &[(0, 1, 1.0), (1, 2, 0.5), (2, 3, 4.0), (0, 3, 0.25)])
                .unwrap();
        let d = dijkstra_all_pairs(&g);
        for (i, row) in d.iter().enumerate() {
            for (j, &dij) in row.iter().enumerate() {
                assert!((dij - d[j][i]).abs() < 1e-12);
            }
            assert_eq!(row[i], 0.0);
        }
    }
}
