//! Classic graph algorithms used by the baselines and the test suite.

pub mod centrality;
pub mod shortest_path;
pub mod traversal;

pub use centrality::{closeness_centrality, harmonic_centrality};
pub use shortest_path::{dijkstra, dijkstra_all_pairs};
pub use traversal::bfs_order;
