//! Breadth-first traversal.

use crate::graph::WeightedGraph;
use std::collections::VecDeque;

/// Nodes reachable from `start` in BFS order (including `start`).
pub fn bfs_order(g: &WeightedGraph, start: usize) -> Vec<usize> {
    let n = g.n_nodes();
    if start >= n {
        return Vec::new();
    }
    let mut seen = vec![false; n];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen[start] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for (v, _) in g.neighbors(u) {
            if !seen[v] {
                seen[v] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_visits_component() {
        let g = WeightedGraph::from_edges(5, &[(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)]).unwrap();
        let order = bfs_order(&g, 0);
        assert_eq!(order, vec![0, 1, 2]);
        let order = bfs_order(&g, 3);
        assert_eq!(order, vec![3, 4]);
    }

    #[test]
    fn bfs_level_order() {
        // Star: 0 connected to 1, 2, 3.
        let g = WeightedGraph::from_edges(4, &[(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0)]).unwrap();
        let order = bfs_order(&g, 0);
        assert_eq!(order[0], 0);
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn bfs_out_of_range_start() {
        let g = WeightedGraph::from_edges(2, &[(0, 1, 1.0)]).unwrap();
        assert!(bfs_order(&g, 7).is_empty());
    }

    #[test]
    fn bfs_isolated_start() {
        let g = WeightedGraph::from_edges(3, &[(0, 1, 1.0)]).unwrap();
        assert_eq!(bfs_order(&g, 2), vec![2]);
    }
}
