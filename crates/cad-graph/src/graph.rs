//! The immutable weighted undirected graph type.

use crate::error::GraphError;
use crate::Result;
use cad_linalg::solve::laplacian::connected_components;
use cad_linalg::{CooMatrix, CsrMatrix, DenseMatrix};

/// An immutable weighted undirected graph over a fixed vertex set,
/// backed by a symmetric CSR adjacency matrix with zero diagonal.
///
/// This is the `G_t` of the paper: node set `V = {0, .., n-1}`, edge
/// weights `A_t(i, j) ≥ 0`, with `A_t(i, j) = 0` meaning "no edge".
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedGraph {
    adj: CsrMatrix,
}

impl WeightedGraph {
    /// Wrap a symmetric adjacency matrix, validating symmetry, a zero
    /// diagonal and non-negative finite weights.
    pub fn from_adjacency(adj: CsrMatrix) -> Result<Self> {
        if adj.nrows() != adj.ncols() {
            return Err(GraphError::Linalg(cad_linalg::LinalgError::NotSquare {
                rows: adj.nrows(),
                cols: adj.ncols(),
            }));
        }
        for (i, j, v) in adj.iter() {
            if i == j {
                return Err(GraphError::SelfLoop { node: i });
            }
            if !v.is_finite() || v < 0.0 {
                return Err(GraphError::InvalidWeight {
                    edge: (i, j),
                    weight: v,
                });
            }
            if (adj.get(j, i) - v).abs() > 1e-12 * v.abs().max(1.0) {
                return Err(GraphError::InvalidInput(format!(
                    "adjacency not symmetric at ({i}, {j}): {v} vs {}",
                    adj.get(j, i)
                )));
            }
        }
        Ok(WeightedGraph { adj })
    }

    /// Wrap an adjacency matrix that is known-valid by construction
    /// (used by [`crate::GraphBuilder`], which enforces the invariants
    /// edge by edge).
    pub(crate) fn from_adjacency_unchecked(adj: CsrMatrix) -> Self {
        WeightedGraph { adj }
    }

    /// Build directly from an undirected edge list.
    pub fn from_edges(n_nodes: usize, edges: &[(usize, usize, f64)]) -> Result<Self> {
        let mut b = crate::GraphBuilder::with_capacity(n_nodes, edges.len());
        b.add_edges(edges.iter().copied())?;
        Ok(b.build())
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.adj.nrows()
    }

    /// Number of undirected edges with non-zero weight (the paper's `m`).
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.adj.nnz() / 2
    }

    /// The symmetric adjacency matrix `A`.
    #[inline]
    pub fn adjacency(&self) -> &CsrMatrix {
        &self.adj
    }

    /// Weight of edge `{u, v}` (0.0 when absent).
    #[inline]
    pub fn weight(&self, u: usize, v: usize) -> f64 {
        self.adj.get(u, v)
    }

    /// True when `{u, v}` has non-zero weight.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.weight(u, v) != 0.0
    }

    /// Neighbours of `u` with their edge weights.
    #[inline]
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (cols, vals) = self.adj.row(u);
        cols.iter().zip(vals).map(|(&c, &v)| (c as usize, v))
    }

    /// Weighted degree `D(u, u) = Σ_v A(u, v)`.
    #[inline]
    pub fn degree(&self, u: usize) -> f64 {
        self.adj.row(u).1.iter().sum()
    }

    /// All weighted degrees.
    pub fn degrees(&self) -> Vec<f64> {
        self.adj.row_sums()
    }

    /// Number of neighbours of `u` (unweighted degree).
    #[inline]
    pub fn degree_count(&self, u: usize) -> usize {
        self.adj.row(u).0.len()
    }

    /// Graph volume `V_G = Σ_i D(i, i)` (paper eq. 3).
    pub fn volume(&self) -> f64 {
        self.adj.sum()
    }

    /// Iterate undirected edges once each as `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.adj.iter_upper()
    }

    /// The combinatorial graph Laplacian `L = D − A` as sparse CSR.
    pub fn laplacian(&self) -> CsrMatrix {
        let n = self.n_nodes();
        let mut coo = CooMatrix::with_capacity(n, n, self.adj.nnz() + n);
        for (i, j, w) in self.adj.iter() {
            coo.push(i, j, -w).expect("in-range by construction");
        }
        for (i, d) in self.degrees().into_iter().enumerate() {
            if d != 0.0 {
                coo.push(i, i, d).expect("in-range by construction");
            }
        }
        coo.to_csr()
    }

    /// The Laplacian as a dense matrix (small graphs / exact paths only).
    pub fn laplacian_dense(&self) -> DenseMatrix {
        let n = self.n_nodes();
        let mut l = DenseMatrix::zeros(n, n);
        for (i, j, w) in self.adj.iter() {
            l.set(i, j, -w);
            l.add_to(i, i, w);
        }
        l
    }

    /// Connected components: `(component id per node, component count)`.
    pub fn components(&self) -> (Vec<u32>, usize) {
        connected_components(&self.adj)
    }

    /// True when the graph is connected (and non-empty).
    pub fn is_connected(&self) -> bool {
        let (_, k) = self.components();
        k == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> WeightedGraph {
        WeightedGraph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let g = triangle();
        assert_eq!(g.n_nodes(), 3);
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.degree(0), 4.0);
        assert_eq!(g.degree(1), 3.0);
        assert_eq!(g.degree(2), 5.0);
        assert_eq!(g.volume(), 12.0);
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.degree_count(1), 2);
    }

    #[test]
    fn edges_iterate_once() {
        let g = triangle();
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(0, 1, 1.0), (0, 2, 3.0), (1, 2, 2.0)]);
    }

    #[test]
    fn neighbors_of_node() {
        let g = triangle();
        let n: Vec<_> = g.neighbors(1).collect();
        assert_eq!(n, vec![(0, 1.0), (2, 2.0)]);
    }

    #[test]
    fn laplacian_rows_sum_to_zero() {
        let g = triangle();
        let l = g.laplacian();
        for i in 0..3 {
            let (_, vals) = l.row(i);
            let s: f64 = vals.iter().sum();
            assert!(s.abs() < 1e-12);
        }
        assert_eq!(l.get(0, 0), 4.0);
        assert_eq!(l.get(0, 1), -1.0);
        // Dense and sparse agree.
        assert!(l.to_dense().max_abs_diff(&g.laplacian_dense()).unwrap() < 1e-15);
    }

    #[test]
    fn connectivity() {
        let g = triangle();
        assert!(g.is_connected());
        let h = WeightedGraph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        assert!(!h.is_connected());
        let (comp, k) = h.components();
        assert_eq!(k, 2);
        assert_eq!(comp[0], comp[1]);
        assert_ne!(comp[0], comp[2]);
    }

    #[test]
    fn from_adjacency_validates() {
        // Asymmetric.
        let bad = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]);
        assert!(WeightedGraph::from_adjacency(bad).is_err());
        // Self-loop.
        let bad = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]);
        assert!(WeightedGraph::from_adjacency(bad).is_err());
        // Negative weight.
        let bad = CsrMatrix::from_triplets(2, 2, &[(0, 1, -1.0), (1, 0, -1.0)]);
        assert!(WeightedGraph::from_adjacency(bad).is_err());
        // Valid.
        let ok = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        assert!(WeightedGraph::from_adjacency(ok).is_ok());
    }

    #[test]
    fn builder_and_from_edges_agree() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 2.0).unwrap();
        b.add_edge(0, 2, 3.0).unwrap();
        assert_eq!(b.build(), triangle());
    }
}
