//! Incremental construction of [`WeightedGraph`]s.

use crate::error::GraphError;
use crate::graph::WeightedGraph;
use crate::Result;
use cad_linalg::CooMatrix;

/// Accumulates undirected weighted edges, then freezes into a
/// [`WeightedGraph`].
///
/// Rules enforced at `add_edge` time, matching the paper's framework:
/// weights must be finite and non-negative (commute times are only
/// defined for non-negative edge weights), self-loops are rejected, and
/// node ids must be in range. Adding the same edge twice *sums* the
/// weights, which is convenient for event-count graphs like the monthly
/// e-mail networks (one increment per message).
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n_nodes: usize,
    coo: CooMatrix,
}

impl GraphBuilder {
    /// Start a graph over `n_nodes` vertices and no edges.
    pub fn new(n_nodes: usize) -> Self {
        GraphBuilder {
            n_nodes,
            coo: CooMatrix::new(n_nodes, n_nodes),
        }
    }

    /// Start with capacity for `cap` undirected edges.
    pub fn with_capacity(n_nodes: usize, cap: usize) -> Self {
        GraphBuilder {
            n_nodes,
            coo: CooMatrix::with_capacity(n_nodes, n_nodes, 2 * cap),
        }
    }

    /// Number of nodes in the graph under construction.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Add (or increment) the undirected edge `{u, v}` with weight `w`.
    pub fn add_edge(&mut self, u: usize, v: usize, w: f64) -> Result<()> {
        if u >= self.n_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: u,
                n_nodes: self.n_nodes,
            });
        }
        if v >= self.n_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: v,
                n_nodes: self.n_nodes,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if !w.is_finite() || w < 0.0 {
            return Err(GraphError::InvalidWeight {
                edge: (u, v),
                weight: w,
            });
        }
        if w == 0.0 {
            // A zero weight is "no edge" in the paper's formulation; adding
            // it is a no-op rather than an error so generators can emit
            // kernel values without special-casing underflow.
            return Ok(());
        }
        self.coo.push_sym(u, v, w).map_err(GraphError::from)
    }

    /// Bulk-add edges from an iterator of `(u, v, w)` triples.
    pub fn add_edges<I>(&mut self, edges: I) -> Result<()>
    where
        I: IntoIterator<Item = (usize, usize, f64)>,
    {
        for (u, v, w) in edges {
            self.add_edge(u, v, w)?;
        }
        Ok(())
    }

    /// Freeze into an immutable graph.
    pub fn build(self) -> WeightedGraph {
        WeightedGraph::from_adjacency_unchecked(self.coo.to_csr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_graph() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 2.0).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        let g = b.build();
        assert_eq!(g.n_nodes(), 3);
        assert_eq!(g.n_edges(), 2);
        assert_eq!(g.weight(0, 1), 2.0);
        assert_eq!(g.weight(1, 0), 2.0);
        assert_eq!(g.weight(0, 2), 0.0);
    }

    #[test]
    fn duplicate_edges_sum() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 0, 2.5).unwrap();
        let g = b.build();
        assert_eq!(g.weight(0, 1), 3.5);
        assert_eq!(g.n_edges(), 1);
    }

    #[test]
    fn zero_weight_is_noop() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.0).unwrap();
        let g = b.build();
        assert_eq!(g.n_edges(), 0);
    }

    #[test]
    fn rejects_bad_edges() {
        let mut b = GraphBuilder::new(3);
        assert!(matches!(
            b.add_edge(0, 3, 1.0),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            b.add_edge(1, 1, 1.0),
            Err(GraphError::SelfLoop { .. })
        ));
        assert!(matches!(
            b.add_edge(0, 1, -1.0),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            b.add_edge(0, 1, f64::NAN),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            b.add_edge(0, 1, f64::INFINITY),
            Err(GraphError::InvalidWeight { .. })
        ));
    }

    #[test]
    fn add_edges_bulk() {
        let mut b = GraphBuilder::new(4);
        b.add_edges([(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
            .unwrap();
        assert_eq!(b.build().n_edges(), 3);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(5).build();
        assert_eq!(g.n_nodes(), 5);
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.volume(), 0.0);
    }
}
