//! Building graph sequences from raw interaction logs.
//!
//! Real deployments rarely start from adjacency matrices: they start
//! from event logs — "u e-mailed v at time τ", "u and v co-authored a
//! paper in year y". This module aggregates a timestamped edge-event
//! stream into the fixed-vertex-set monthly/yearly [`GraphSequence`]
//! the detectors consume, exactly the preprocessing the paper describes
//! for Enron ("aggregate the data on a monthly basis … edge weights
//! indicate the number of times emails are exchanged").

use crate::error::GraphError;
use crate::sequence::GraphSequence;
use crate::{GraphBuilder, Result};

/// One interaction event: endpoints and a timestamp (any monotone unit —
/// seconds, days; buckets are defined by [`AggregateOptions`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeEvent {
    /// First endpoint.
    pub u: usize,
    /// Second endpoint.
    pub v: usize,
    /// Event time.
    pub time: u64,
    /// Weight contributed by this event (1.0 for plain counts).
    pub weight: f64,
}

impl EdgeEvent {
    /// A unit-weight event.
    pub fn new(u: usize, v: usize, time: u64) -> Self {
        EdgeEvent {
            u,
            v,
            time,
            weight: 1.0,
        }
    }
}

/// Options for [`sequence_from_events`].
#[derive(Debug, Clone, Copy)]
pub struct AggregateOptions {
    /// Vertex-set size (fixed across the sequence).
    pub n_nodes: usize,
    /// Bucket width in timestamp units (e.g. `30 * 86400` for monthly
    /// buckets over Unix-time seconds).
    pub bucket_width: u64,
    /// Start of the first bucket; `None` uses the earliest event time.
    pub start: Option<u64>,
    /// Number of buckets; `None` extends to the latest event time.
    pub n_buckets: Option<usize>,
}

/// Aggregate events into a sequence: instance `t` holds the summed
/// weights of all events with
/// `start + t·width ≤ time < start + (t+1)·width`. Buckets with no
/// events become empty graph instances (a quiet period is data, not a
/// gap). Events outside the configured range are ignored.
pub fn sequence_from_events(
    events: &[EdgeEvent],
    opts: &AggregateOptions,
) -> Result<GraphSequence> {
    if opts.bucket_width == 0 {
        return Err(GraphError::InvalidInput(
            "bucket width must be positive".into(),
        ));
    }
    if events.is_empty() && opts.n_buckets.is_none() {
        return Err(GraphError::InvalidInput(
            "cannot infer the time range from an empty event list".into(),
        ));
    }
    let start = opts
        .start
        .unwrap_or_else(|| events.iter().map(|e| e.time).min().unwrap_or(0));
    let n_buckets = match opts.n_buckets {
        Some(n) => n,
        None => {
            let last = events.iter().map(|e| e.time).max().unwrap_or(start);
            if last < start {
                return Err(GraphError::InvalidInput(
                    "explicit start lies after every event".into(),
                ));
            }
            ((last - start) / opts.bucket_width + 1) as usize
        }
    };
    if n_buckets < 2 {
        return Err(GraphError::SequenceTooShort {
            required: 2,
            found: n_buckets,
        });
    }

    let mut builders: Vec<GraphBuilder> = (0..n_buckets)
        .map(|_| GraphBuilder::new(opts.n_nodes))
        .collect();
    for e in events {
        if e.time < start {
            continue;
        }
        let bucket = ((e.time - start) / opts.bucket_width) as usize;
        if bucket >= n_buckets {
            continue;
        }
        builders[bucket].add_edge(e.u, e.v, e.weight)?;
    }
    GraphSequence::new(builders.into_iter().map(GraphBuilder::build).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(u: usize, v: usize, time: u64) -> EdgeEvent {
        EdgeEvent::new(u, v, time)
    }

    #[test]
    fn counts_accumulate_per_bucket() {
        let events = vec![ev(0, 1, 0), ev(0, 1, 5), ev(1, 2, 8), ev(0, 1, 12)];
        let seq = sequence_from_events(
            &events,
            &AggregateOptions {
                n_nodes: 3,
                bucket_width: 10,
                start: None,
                n_buckets: None,
            },
        )
        .unwrap();
        assert_eq!(seq.len(), 2);
        assert_eq!(seq.graph(0).weight(0, 1), 2.0);
        assert_eq!(seq.graph(0).weight(1, 2), 1.0);
        assert_eq!(seq.graph(1).weight(0, 1), 1.0);
    }

    #[test]
    fn quiet_buckets_are_empty_instances() {
        let events = vec![ev(0, 1, 0), ev(0, 1, 25)];
        let seq = sequence_from_events(
            &events,
            &AggregateOptions {
                n_nodes: 2,
                bucket_width: 10,
                start: None,
                n_buckets: None,
            },
        )
        .unwrap();
        assert_eq!(seq.len(), 3);
        assert_eq!(seq.graph(1).n_edges(), 0);
    }

    #[test]
    fn explicit_range_clips_events() {
        let events = vec![ev(0, 1, 5), ev(0, 1, 15), ev(0, 1, 95)];
        let seq = sequence_from_events(
            &events,
            &AggregateOptions {
                n_nodes: 2,
                bucket_width: 10,
                start: Some(10),
                n_buckets: Some(3),
            },
        )
        .unwrap();
        // Events at 5 (before start) and 95 (after range) are ignored.
        assert_eq!(seq.len(), 3);
        assert_eq!(seq.graph(0).weight(0, 1), 1.0);
        assert_eq!(seq.graph(1).n_edges(), 0);
        assert_eq!(seq.graph(2).n_edges(), 0);
    }

    #[test]
    fn weighted_events() {
        let mut e = ev(0, 1, 0);
        e.weight = 2.5;
        let seq = sequence_from_events(
            &[e, ev(0, 1, 10)],
            &AggregateOptions {
                n_nodes: 2,
                bucket_width: 10,
                start: None,
                n_buckets: None,
            },
        )
        .unwrap();
        assert_eq!(seq.graph(0).weight(0, 1), 2.5);
    }

    #[test]
    fn validation_errors() {
        let opts = AggregateOptions {
            n_nodes: 2,
            bucket_width: 0,
            start: None,
            n_buckets: None,
        };
        assert!(sequence_from_events(&[ev(0, 1, 0)], &opts).is_err());
        let opts = AggregateOptions {
            n_nodes: 2,
            bucket_width: 10,
            start: None,
            n_buckets: None,
        };
        assert!(sequence_from_events(&[], &opts).is_err());
        // Single bucket → too short for a sequence.
        assert!(matches!(
            sequence_from_events(&[ev(0, 1, 3)], &opts),
            Err(GraphError::SequenceTooShort { .. })
        ));
        // Bad endpoints propagate.
        let opts = AggregateOptions {
            n_nodes: 2,
            bucket_width: 10,
            start: None,
            n_buckets: Some(2),
        };
        assert!(sequence_from_events(&[ev(0, 5, 0)], &opts).is_err());
    }

    #[test]
    fn detection_over_aggregated_events() {
        // End-to-end: a burst of new cross-pair interaction in the second
        // window is localized by CAD.
        let mut events = Vec::new();
        for t in [0u64, 3, 6, 10, 13, 16] {
            events.push(ev(0, 1, t));
            events.push(ev(2, 3, t));
            events.push(ev(1, 2, t)); // weak standing link
        }
        for t in [12u64, 14, 15, 17] {
            events.push(ev(0, 3, t)); // the anomaly: new distant tie
        }
        let seq = sequence_from_events(
            &events,
            &AggregateOptions {
                n_nodes: 4,
                bucket_width: 10,
                start: None,
                n_buckets: None,
            },
        )
        .unwrap();
        let det = cad_core_stub::detect_top(&seq);
        assert_eq!(det, (0, 3));
    }

    /// Minimal stand-in so this crate's tests don't depend on cad-core
    /// (which depends on this crate): score edges by |ΔA|·|Δc| with the
    /// dense pseudoinverse directly.
    mod cad_core_stub {
        use crate::sequence::GraphSequence;
        use cad_linalg::pinv::sym_pinv;

        pub fn detect_top(seq: &GraphSequence) -> (usize, usize) {
            let c = |g: &crate::WeightedGraph, i: usize, j: usize| {
                let p = sym_pinv(&g.laplacian_dense(), 1e-9).unwrap();
                g.volume() * (p.get(i, i) + p.get(j, j) - 2.0 * p.get(i, j))
            };
            let (g0, g1) = (seq.graph(0), seq.graph(1));
            let mut best = (0usize, 0usize, 0.0f64);
            for (u, v, w1) in g1.edges() {
                let w0 = g0.weight(u, v);
                let score = (w1 - w0).abs() * (c(g1, u, v) - c(g0, u, v)).abs();
                if score > best.2 {
                    best = (u, v, score);
                }
            }
            (best.0, best.1)
        }
    }
}
