//! Plain-text I/O for graphs and graph sequences.
//!
//! The format is a line-oriented weighted edge list, chosen so that real
//! datasets (SNAP-style edge lists, exported adjacency dumps) convert
//! with a one-line awk script:
//!
//! ```text
//! # anything after '#' is a comment
//! nodes 17            # header: vertex-set size (fixed for a sequence)
//! instance            # starts a new graph instance
//! 0 1 3.0             # edge: u v weight
//! 0 2 3.0
//! instance            # the next time step
//! 0 1 2.5
//! ```
//!
//! A file with a single `instance` marker (or none) parses as one
//! [`WeightedGraph`]; two or more parse as a [`GraphSequence`].

use crate::error::GraphError;
use crate::graph::WeightedGraph;
use crate::sequence::GraphSequence;
use crate::{GraphBuilder, Result};
use std::io::{BufRead, BufReader, Read, Write};

/// Write one graph as an edge list (with `nodes` header and one
/// `instance` marker).
pub fn write_graph<W: Write>(mut w: W, g: &WeightedGraph) -> Result<()> {
    let io_err = |e: std::io::Error| GraphError::InvalidInput(format!("write failed: {e}"));
    writeln!(w, "nodes {}", g.n_nodes()).map_err(io_err)?;
    writeln!(w, "instance").map_err(io_err)?;
    for (u, v, weight) in g.edges() {
        writeln!(w, "{u} {v} {weight}").map_err(io_err)?;
    }
    Ok(())
}

/// Write a whole sequence (shared `nodes` header, one `instance` block
/// per time step).
pub fn write_sequence<W: Write>(mut w: W, seq: &GraphSequence) -> Result<()> {
    let _span = cad_obs::span!("io_write_sequence");
    let io_err = |e: std::io::Error| GraphError::InvalidInput(format!("write failed: {e}"));
    writeln!(w, "nodes {}", seq.n_nodes()).map_err(io_err)?;
    for g in seq.graphs() {
        writeln!(w, "instance").map_err(io_err)?;
        for (u, v, weight) in g.edges() {
            writeln!(w, "{u} {v} {weight}").map_err(io_err)?;
        }
    }
    Ok(())
}

/// Parse one or more instances; returns the list of graphs and the
/// declared vertex count.
fn read_instances<R: Read>(r: R) -> Result<(usize, Vec<WeightedGraph>)> {
    let reader = BufReader::new(r);
    let mut n_nodes: Option<usize> = None;
    let mut builders: Vec<GraphBuilder> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| GraphError::InvalidInput(format!("read failed: {e}")))?;
        let content = line.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut tokens = content.split_whitespace();
        match tokens.next() {
            Some("nodes") => {
                let n: usize = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad_line(lineno, "expected `nodes <count>`"))?;
                if n_nodes.replace(n).is_some() {
                    return Err(bad_line(lineno, "duplicate `nodes` header"));
                }
            }
            Some("instance") => {
                let n =
                    n_nodes.ok_or_else(|| bad_line(lineno, "`instance` before `nodes` header"))?;
                builders.push(GraphBuilder::new(n));
            }
            Some(u_tok) => {
                let parse = |t: Option<&str>| t.and_then(|t| t.parse::<f64>().ok());
                let u: usize = u_tok
                    .parse()
                    .map_err(|_| bad_line(lineno, "expected `u v weight`"))?;
                let v: usize = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad_line(lineno, "expected `u v weight`"))?;
                let weight = parse(tokens.next())
                    .ok_or_else(|| bad_line(lineno, "expected `u v weight`"))?;
                let builder = builders
                    .last_mut()
                    .ok_or_else(|| bad_line(lineno, "edge before any `instance` marker"))?;
                builder.add_edge(u, v, weight)?;
            }
            None => unreachable!("empty content filtered above"),
        }
    }
    let n = n_nodes.ok_or_else(|| GraphError::InvalidInput("missing `nodes` header".into()))?;
    Ok((n, builders.into_iter().map(GraphBuilder::build).collect()))
}

fn bad_line(lineno: usize, msg: &str) -> GraphError {
    GraphError::InvalidInput(format!("line {}: {msg}", lineno + 1))
}

/// Read a single graph (exactly one `instance` block).
pub fn read_graph<R: Read>(r: R) -> Result<WeightedGraph> {
    let (_, mut graphs) = read_instances(r)?;
    match graphs.len() {
        1 => Ok(graphs.pop().expect("len checked")),
        k => Err(GraphError::InvalidInput(format!(
            "expected 1 instance, found {k}"
        ))),
    }
}

/// Read a sequence (two or more `instance` blocks).
pub fn read_sequence<R: Read>(r: R) -> Result<GraphSequence> {
    let _span = cad_obs::span!("io_read_sequence");
    let (_, graphs) = read_instances(r)?;
    GraphSequence::new(graphs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_seq() -> GraphSequence {
        let g0 = WeightedGraph::from_edges(4, &[(0, 1, 1.5), (2, 3, 2.0)]).unwrap();
        let g1 = WeightedGraph::from_edges(4, &[(0, 1, 1.5), (2, 3, 2.5), (1, 2, 0.5)]).unwrap();
        GraphSequence::new(vec![g0, g1]).unwrap()
    }

    #[test]
    fn graph_roundtrip() {
        let g = WeightedGraph::from_edges(3, &[(0, 1, 1.25), (1, 2, 0.75)]).unwrap();
        let mut buf = Vec::new();
        write_graph(&mut buf, &g).unwrap();
        let back = read_graph(&buf[..]).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn sequence_roundtrip() {
        let seq = sample_seq();
        let mut buf = Vec::new();
        write_sequence(&mut buf, &seq).unwrap();
        let back = read_sequence(&buf[..]).unwrap();
        assert_eq!(back.len(), 2);
        for t in 0..2 {
            assert_eq!(back.graph(t), seq.graph(t));
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# header comment\nnodes 3\ninstance # first\n0 1 2.0 # edge\n\n1 2 1.0\n";
        let g = read_graph(text.as_bytes()).unwrap();
        assert_eq!(g.n_edges(), 2);
        assert_eq!(g.weight(0, 1), 2.0);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = read_graph("nodes 3\ninstance\n0 x 1.0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
        let err = read_graph("instance\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("before `nodes`"), "{err}");
        let err = read_graph("nodes 3\n0 1 1.0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("before any `instance`"), "{err}");
        let err = read_graph("nodes 3\nnodes 4\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn wrong_instance_count_rejected() {
        let seq = sample_seq();
        let mut buf = Vec::new();
        write_sequence(&mut buf, &seq).unwrap();
        assert!(read_graph(&buf[..]).is_err());
        assert!(read_sequence("nodes 2\ninstance\n0 1 1.0\n".as_bytes()).is_err());
    }

    #[test]
    fn invalid_edges_propagate_graph_errors() {
        let err = read_graph("nodes 2\ninstance\n0 5 1.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { .. }));
        let err = read_graph("nodes 2\ninstance\n0 1 -2.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::InvalidWeight { .. }));
    }
}
