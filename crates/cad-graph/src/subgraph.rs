//! Induced and ego subgraphs.
//!
//! Analyst drill-down after detection: once CAD names a node, pull out
//! its neighbourhood (the paper's Figure 8b shows exactly this — the
//! CEO's ego network before and during the eruption).

use crate::graph::WeightedGraph;
use crate::{GraphBuilder, GraphError, Result};
use std::collections::VecDeque;

/// The subgraph induced by a set of nodes, plus the mapping from new
/// (dense) indices back to the original node ids.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// The induced graph over re-indexed nodes `0..len`.
    pub graph: WeightedGraph,
    /// `original_id[new_index]` — the node each new index came from.
    pub original_id: Vec<usize>,
}

impl Subgraph {
    /// New index of an original node, if it is in the subgraph.
    pub fn index_of(&self, original: usize) -> Option<usize> {
        self.original_id.iter().position(|&o| o == original)
    }
}

/// Induced subgraph over `nodes` (duplicates ignored, order preserved).
pub fn induced_subgraph(g: &WeightedGraph, nodes: &[usize]) -> Result<Subgraph> {
    let mut original_id = Vec::with_capacity(nodes.len());
    let mut new_index = vec![usize::MAX; g.n_nodes()];
    for &n in nodes {
        if n >= g.n_nodes() {
            return Err(GraphError::NodeOutOfRange {
                node: n,
                n_nodes: g.n_nodes(),
            });
        }
        if new_index[n] == usize::MAX {
            new_index[n] = original_id.len();
            original_id.push(n);
        }
    }
    let mut b = GraphBuilder::new(original_id.len());
    for (ni, &orig) in original_id.iter().enumerate() {
        for (nb, w) in g.neighbors(orig) {
            let nj = new_index[nb];
            if nj != usize::MAX && nj > ni {
                b.add_edge(ni, nj, w)?;
            }
        }
    }
    Ok(Subgraph {
        graph: b.build(),
        original_id,
    })
}

/// Ego subgraph: `center` plus everything within `radius` hops,
/// induced. `radius = 1` is the paper's egonet.
pub fn ego_subgraph(g: &WeightedGraph, center: usize, radius: usize) -> Result<Subgraph> {
    if center >= g.n_nodes() {
        return Err(GraphError::NodeOutOfRange {
            node: center,
            n_nodes: g.n_nodes(),
        });
    }
    let mut dist = vec![usize::MAX; g.n_nodes()];
    let mut order = vec![center];
    let mut queue = VecDeque::from([center]);
    dist[center] = 0;
    while let Some(u) = queue.pop_front() {
        if dist[u] == radius {
            continue;
        }
        for (v, _) in g.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                order.push(v);
                queue.push_back(v);
            }
        }
    }
    induced_subgraph(g, &order)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WeightedGraph {
        // 0-1-2-3 path plus triangle 1-2-4.
        WeightedGraph::from_edges(
            5,
            &[
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 3, 3.0),
                (1, 4, 4.0),
                (2, 4, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn induced_keeps_internal_edges_only() {
        let g = sample();
        let s = induced_subgraph(&g, &[1, 2, 4]).unwrap();
        assert_eq!(s.graph.n_nodes(), 3);
        assert_eq!(s.graph.n_edges(), 3); // the triangle
        let (i1, i4) = (s.index_of(1).unwrap(), s.index_of(4).unwrap());
        assert_eq!(s.graph.weight(i1, i4), 4.0);
        assert_eq!(s.index_of(0), None);
    }

    #[test]
    fn duplicates_and_order() {
        let g = sample();
        let s = induced_subgraph(&g, &[3, 3, 2]).unwrap();
        assert_eq!(s.original_id, vec![3, 2]);
        assert_eq!(s.graph.n_edges(), 1);
    }

    #[test]
    fn ego_radius_one() {
        let g = sample();
        let s = ego_subgraph(&g, 0, 1).unwrap();
        assert_eq!(s.original_id, vec![0, 1]);
        assert_eq!(s.graph.n_edges(), 1);
    }

    #[test]
    fn ego_radius_two_includes_triangle() {
        let g = sample();
        let s = ego_subgraph(&g, 0, 2).unwrap();
        let mut ids = s.original_id.clone();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 4]);
        // Edges among {0,1,2,4}: (0,1), (1,2), (1,4), (2,4).
        assert_eq!(s.graph.n_edges(), 4);
    }

    #[test]
    fn radius_zero_is_single_node() {
        let g = sample();
        let s = ego_subgraph(&g, 2, 0).unwrap();
        assert_eq!(s.original_id, vec![2]);
        assert_eq!(s.graph.n_edges(), 0);
    }

    #[test]
    fn out_of_range_rejected() {
        let g = sample();
        assert!(induced_subgraph(&g, &[9]).is_err());
        assert!(ego_subgraph(&g, 9, 1).is_err());
    }
}
