//! Gaussian-mixture similarity graphs (paper §4.1, Figure 4).
//!
//! The quantitative benchmark draws 2-D points from a 4-component
//! Gaussian mixture and connects every pair `(i, j)` with weight
//! `exp(−d(i, j))`, producing a graph with four strongly intra-connected
//! clusters and weak inter-cluster ties. The paper stores the resulting
//! matrix densely; we drop kernel values below a configurable floor so
//! the graph stays sparse (DESIGN.md §5, substitution 5) — at the default
//! floor of `1e-4` only edges between points ≥ 9.2 apart are dropped,
//! which on the default layout is a tiny fraction of the total weight.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::WeightedGraph;
use crate::Result;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters of a 2-D Gaussian mixture.
#[derive(Debug, Clone)]
pub struct GmmParams {
    /// Component means.
    pub means: Vec<[f64; 2]>,
    /// Per-component isotropic standard deviation.
    pub std: f64,
}

impl Default for GmmParams {
    /// Four well-separated components arranged on a square, mimicking the
    /// layout of the paper's Figure 4a.
    fn default() -> Self {
        GmmParams {
            means: vec![[0.0, 0.0], [4.0, 0.0], [0.0, 4.0], [4.0, 4.0]],
            std: 0.6,
        }
    }
}

/// Draw `n` points from the mixture (components equiprobable).
///
/// Returns `(points, component_of_point)`.
pub fn sample_gmm(n: usize, params: &GmmParams, seed: u64) -> (Vec<[f64; 2]>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let k = params.means.len();
    let mut pts = Vec::with_capacity(n);
    let mut comps = Vec::with_capacity(n);
    for _ in 0..n {
        let c = rng.random_range(0..k);
        let m = params.means[c];
        pts.push([
            m[0] + params.std * gaussian(&mut rng),
            m[1] + params.std * gaussian(&mut rng),
        ]);
        comps.push(c);
    }
    (pts, comps)
}

/// Standard normal via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = 1.0 - rng.random::<f64>(); // (0, 1]
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Exponential-kernel similarity graph: `w(i, j) = exp(−‖p_i − p_j‖)`,
/// keeping edges with weight above `floor`.
pub fn similarity_graph(points: &[[f64; 2]], floor: f64) -> Result<WeightedGraph> {
    if !(0.0..1.0).contains(&floor) {
        return Err(GraphError::InvalidInput(format!(
            "floor must be in [0, 1), got {floor}"
        )));
    }
    let n = points.len();
    // w > floor  ⟺  d < −ln(floor); precompute the squared cutoff.
    let d_max = if floor == 0.0 {
        f64::INFINITY
    } else {
        -floor.ln()
    };
    let d_max_sq = d_max * d_max;
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = points[i][0] - points[j][0];
            let dy = points[i][1] - points[j][1];
            let d_sq = dx * dx + dy * dy;
            if d_sq < d_max_sq {
                b.add_edge(i, j, (-d_sq.sqrt()).exp())?;
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_basics() {
        let (pts, comps) = sample_gmm(400, &GmmParams::default(), 1);
        assert_eq!(pts.len(), 400);
        assert_eq!(comps.len(), 400);
        // All four components drawn.
        for c in 0..4 {
            let count = comps.iter().filter(|&&x| x == c).count();
            assert!(count > 50, "component {c} drawn only {count} times");
        }
        // Points concentrate near their means.
        for (p, &c) in pts.iter().zip(&comps) {
            let m = GmmParams::default().means[c];
            let d = ((p[0] - m[0]).powi(2) + (p[1] - m[1]).powi(2)).sqrt();
            assert!(d < 5.0, "point {p:?} too far from mean {m:?}");
        }
    }

    #[test]
    fn sampling_deterministic() {
        let a = sample_gmm(50, &GmmParams::default(), 9);
        let b = sample_gmm(50, &GmmParams::default(), 9);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn similarity_graph_cluster_structure() {
        let (pts, comps) = sample_gmm(120, &GmmParams::default(), 3);
        let g = similarity_graph(&pts, 1e-4).unwrap();
        assert!(g.is_connected());
        // Mean intra-cluster weight must dominate mean inter-cluster weight.
        let (mut intra, mut inter) = ((0.0, 0usize), (0.0, 0usize));
        for (u, v, w) in g.edges() {
            if comps[u] == comps[v] {
                intra = (intra.0 + w, intra.1 + 1);
            } else {
                inter = (inter.0 + w, inter.1 + 1);
            }
        }
        let intra_mean = intra.0 / intra.1 as f64;
        let inter_mean = inter.0 / inter.1.max(1) as f64;
        assert!(
            intra_mean > 5.0 * inter_mean,
            "intra {intra_mean} not ≫ inter {inter_mean}"
        );
    }

    #[test]
    fn floor_controls_sparsity() {
        let (pts, _) = sample_gmm(100, &GmmParams::default(), 4);
        let dense = similarity_graph(&pts, 0.0).unwrap();
        let sparse = similarity_graph(&pts, 1e-2).unwrap();
        assert_eq!(dense.n_edges(), 100 * 99 / 2);
        assert!(sparse.n_edges() < dense.n_edges());
    }

    #[test]
    fn rejects_bad_floor() {
        assert!(similarity_graph(&[[0.0, 0.0]], 1.0).is_err());
        assert!(similarity_graph(&[[0.0, 0.0]], -0.1).is_err());
    }

    #[test]
    fn kernel_weights_match_distances() {
        let pts = vec![[0.0, 0.0], [1.0, 0.0], [0.0, 2.0]];
        let g = similarity_graph(&pts, 0.0).unwrap();
        assert!((g.weight(0, 1) - (-1.0f64).exp()).abs() < 1e-12);
        assert!((g.weight(0, 2) - (-2.0f64).exp()).abs() < 1e-12);
        assert!((g.weight(1, 2) - (-(5.0f64).sqrt()).exp()).abs() < 1e-12);
    }
}
