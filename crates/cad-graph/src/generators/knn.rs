//! k-nearest-neighbour kernel graphs over scalar node attributes.
//!
//! The precipitation experiment (§4.2.3) builds, for each month, a
//! 10-NN graph over recording locations where the edge weight between a
//! location and each of its 10 nearest neighbours *in precipitation
//! value* is `exp(−(p_i − p_j)² / 2σ²)`.
//!
//! For scalar attributes the k nearest neighbours of a value are always
//! contiguous in sorted order, so the construction runs in
//! `O(n (log n + k))` with a two-pointer window instead of the naive
//! `O(n²)` scan.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::WeightedGraph;
use crate::Result;

/// Build the symmetric k-NN Gaussian-kernel graph over scalar values.
///
/// An undirected edge `{i, j}` exists when `j` is among the `k` nearest
/// values to `i` *or* vice versa (the usual symmetrized k-NN graph), with
/// weight `exp(−(v_i − v_j)²/(2σ²))`.
pub fn knn_kernel_graph_1d(values: &[f64], k: usize, sigma: f64) -> Result<WeightedGraph> {
    let n = values.len();
    if k == 0 || k >= n {
        return Err(GraphError::InvalidInput(format!(
            "k must satisfy 0 < k < n; got k={k}, n={n}"
        )));
    }
    if sigma <= 0.0 || !sigma.is_finite() {
        return Err(GraphError::InvalidInput(format!(
            "sigma must be positive, got {sigma}"
        )));
    }
    if let Some(bad) = values.iter().find(|v| !v.is_finite()) {
        return Err(GraphError::InvalidInput(format!("non-finite value {bad}")));
    }

    // Sort node ids by value.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .expect("values are finite")
    });

    let inv_two_sigma_sq = 1.0 / (2.0 * sigma * sigma);
    let mut b = GraphBuilder::with_capacity(n, n * k);
    // For each position p in sorted order, find its k nearest among the
    // sorted neighbours with a shrinking two-sided window.
    let mut seen = std::collections::HashSet::with_capacity(n * k);
    for p in 0..n {
        let vi = values[order[p]];
        let (mut lo, mut hi) = (p, p); // window [lo, hi] inclusive around p
        for _ in 0..k {
            let take_lo = if lo == 0 {
                false
            } else if hi == n - 1 {
                true
            } else {
                (vi - values[order[lo - 1]]).abs() <= (values[order[hi + 1]] - vi).abs()
            };
            if take_lo {
                lo -= 1;
            } else {
                hi += 1;
            }
        }
        let i = order[p];
        for (q, &j) in order.iter().enumerate().take(hi + 1).skip(lo) {
            if q == p {
                continue;
            }
            let key = if i < j { (i, j) } else { (j, i) };
            if !seen.insert(key) {
                continue; // Edge already added from the other side.
            }
            let d = vi - values[j];
            b.add_edge(i, j, (-d * d * inv_two_sigma_sq).exp())?;
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knn_connects_value_neighbors() {
        let values = [0.0, 1.0, 2.0, 10.0, 11.0, 12.0];
        let g = knn_kernel_graph_1d(&values, 2, 1.0).unwrap();
        // Each low node links to the other low nodes, not across the gap...
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(3, 4));
        assert!(g.has_edge(4, 5));
        // ...except where k forces a long edge (2's neighbours are 0,1).
        assert!(!g.has_edge(2, 3));
    }

    #[test]
    fn weights_are_gaussian_kernel() {
        let values = [0.0, 1.0, 3.0];
        let g = knn_kernel_graph_1d(&values, 1, 2.0).unwrap();
        let w01 = (-1.0f64 / 8.0).exp();
        assert!((g.weight(0, 1) - w01).abs() < 1e-12);
    }

    #[test]
    fn symmetrized_union_graph() {
        // With k=1: 0's NN is 1; 1's NN is 2 (closer); 2's NN is 1.
        // Union contains {0,1} and {1,2}.
        let values = [0.0, 2.0, 3.0];
        let g = knn_kernel_graph_1d(&values, 1, 1.0).unwrap();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert_eq!(g.n_edges(), 2);
    }

    #[test]
    fn degrees_bounded() {
        // Every node contributes ≤ k edges, so max unweighted degree ≤ 2k.
        let values: Vec<f64> = (0..200).map(|i| ((i * 37) % 101) as f64).collect();
        let k = 5;
        let g = knn_kernel_graph_1d(&values, k, 10.0).unwrap();
        for u in 0..200 {
            assert!(g.degree_count(u) <= 2 * k);
            assert!(g.degree_count(u) >= k.min(2)); // at least its own k (dedup on ties aside)
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(knn_kernel_graph_1d(&[1.0, 2.0], 0, 1.0).is_err());
        assert!(knn_kernel_graph_1d(&[1.0, 2.0], 2, 1.0).is_err());
        assert!(knn_kernel_graph_1d(&[1.0, 2.0], 1, 0.0).is_err());
        assert!(knn_kernel_graph_1d(&[1.0, f64::NAN], 1, 1.0).is_err());
    }

    #[test]
    fn identical_values_get_unit_weights() {
        let values = [5.0, 5.0, 5.0, 5.0];
        let g = knn_kernel_graph_1d(&values, 2, 1.0).unwrap();
        for (_, _, w) in g.edges() {
            assert_eq!(w, 1.0);
        }
        assert!(g.is_connected());
    }
}
