//! The 17-node illustrative example of the paper (Figure 1).
//!
//! Two loosely-coupled clusters — blue `b1..b8` and red `r1..r9` — where
//! the red cluster itself contains a bridge edge `r7–r8` separating the
//! subgroup `{r4, r6, r8, r9}` from the rest. Five scripted edge-weight
//! changes happen between time `t` and `t+1`:
//!
//! | id | edge      | change              | paper case | verdict   |
//! |----|-----------|---------------------|------------|-----------|
//! | S1 | `b1–r1`   | new edge            | Case 2     | anomalous |
//! | S2 | `r7–r8`   | bridge weakens      | Case 3     | anomalous |
//! | S3 | `b4–b5`   | large increase      | Case 1     | anomalous |
//! | S4 | `b1–b3`   | small decrease      | —          | benign    |
//! | S5 | `b2–b7`   | small increase      | —          | benign    |
//!
//! The paper's Figure 1 gives the topology only qualitatively; the
//! concrete weights here are chosen so the qualitative structure
//! (clusters, bridge, tight coupling of the benign pairs) holds, and the
//! reproduction checks *orderings and separations* of Tables 1–2 rather
//! than the paper's absolute score values.

use crate::graph::WeightedGraph;
use crate::sequence::GraphSequence;

/// Node index of a blue node `b1..b8` (1-based, as in the paper).
pub const fn b(i: usize) -> usize {
    i - 1
}

/// Node index of a red node `r1..r9` (1-based, as in the paper).
pub const fn r(i: usize) -> usize {
    8 + i - 1
}

/// Number of nodes in the toy example.
pub const N_NODES: usize = 17;

/// The toy dynamic graph plus its ground truth.
#[derive(Debug, Clone)]
pub struct ToyExample {
    /// Two instances: `G_t` and `G_{t+1}`.
    pub seq: GraphSequence,
    /// The three anomalous edges (S1, S3, S2 of the table above).
    pub anomalous_edges: Vec<(usize, usize)>,
    /// The two benign changed edges (S4, S5).
    pub benign_changed_edges: Vec<(usize, usize)>,
    /// Endpoints of the anomalous edges: `b1, r1, b4, b5, r7, r8`.
    pub anomalous_nodes: Vec<usize>,
}

/// Human-readable label of toy node `i` (`"b1"`…`"b8"`, `"r1"`…`"r9"`).
pub fn node_label(i: usize) -> String {
    if i < 8 {
        format!("b{}", i + 1)
    } else {
        format!("r{}", i - 8 + 1)
    }
}

/// Inverse of [`node_label`].
pub fn node_index(label: &str) -> Option<usize> {
    let (kind, num) = label.split_at(1);
    let num: usize = num.parse().ok()?;
    match kind {
        "b" if (1..=8).contains(&num) => Some(b(num)),
        "r" if (1..=9).contains(&num) => Some(r(num)),
        _ => None,
    }
}

fn base_edges() -> Vec<(usize, usize, f64)> {
    vec![
        // Blue cluster: well connected.
        (b(1), b(2), 3.0),
        (b(1), b(3), 3.0),
        (b(1), b(6), 2.0),
        (b(2), b(3), 2.0),
        (b(2), b(7), 2.0),
        (b(3), b(4), 2.0),
        (b(4), b(5), 1.0),
        (b(4), b(8), 2.0),
        (b(5), b(6), 2.0),
        (b(6), b(7), 2.0),
        (b(7), b(8), 2.0),
        // Red subgroup A: {r1, r2, r3, r5, r7}.
        (r(1), r(2), 3.0),
        (r(1), r(3), 2.0),
        (r(1), r(7), 2.0),
        (r(2), r(3), 2.0),
        (r(2), r(5), 2.0),
        (r(3), r(5), 2.0),
        (r(3), r(7), 2.0),
        (r(5), r(7), 2.0),
        // Red subgroup B: {r4, r6, r8, r9}.
        (r(4), r(6), 2.0),
        (r(4), r(8), 2.0),
        (r(4), r(9), 2.0),
        (r(6), r(8), 2.0),
        (r(6), r(9), 2.0),
        (r(8), r(9), 2.0),
        // Bridge between the red subgroups.
        (r(7), r(8), 2.0),
        // Weak blue–red ties keeping the graph connected.
        (b(3), r(2), 0.5),
        (b(8), r(5), 0.5),
    ]
}

/// Construct the toy example: `G_t`, `G_{t+1}` and ground truth.
pub fn toy_example() -> ToyExample {
    let edges_t = base_edges();
    let mut edges_t1 = Vec::with_capacity(edges_t.len() + 1);
    for &(u, v, w) in &edges_t {
        let w1 = if (u, v) == (r(7), r(8)) {
            0.5 // S2: bridge weakens.
        } else if (u, v) == (b(4), b(5)) {
            6.0 // S3: large increase.
        } else if (u, v) == (b(1), b(3)) || (u, v) == (b(2), b(7)) {
            2.5 // S4 (benign small decrease) / S5 (benign small increase).
        } else {
            w
        };
        edges_t1.push((u, v, w1));
    }
    // S1: new edge between the clusters.
    edges_t1.push((b(1), r(1), 1.0));

    let g_t = WeightedGraph::from_edges(N_NODES, &edges_t).expect("static edge list is valid");
    let g_t1 = WeightedGraph::from_edges(N_NODES, &edges_t1).expect("static edge list is valid");
    let seq = GraphSequence::new(vec![g_t, g_t1]).expect("two instances, same node count");

    ToyExample {
        seq,
        anomalous_edges: vec![(b(1), r(1)), (b(4), b(5)), (r(7), r(8))],
        benign_changed_edges: vec![(b(1), b(3)), (b(2), b(7))],
        anomalous_nodes: vec![b(1), b(4), b(5), r(1), r(7), r(8)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_matches_description() {
        let toy = toy_example();
        let g0 = toy.seq.graph(0);
        let g1 = toy.seq.graph(1);
        assert_eq!(g0.n_nodes(), 17);
        // S1 new edge exists only at t+1.
        assert!(!g0.has_edge(b(1), r(1)));
        assert_eq!(g1.weight(b(1), r(1)), 1.0);
        // S2 bridge weakened.
        assert_eq!(g0.weight(r(7), r(8)), 2.0);
        assert_eq!(g1.weight(r(7), r(8)), 0.5);
        // S3 strengthened.
        assert_eq!(g0.weight(b(4), b(5)), 1.0);
        assert_eq!(g1.weight(b(4), b(5)), 6.0);
        // Both instances connected.
        assert!(g0.is_connected());
        assert!(g1.is_connected());
    }

    #[test]
    fn bridge_separates_red_subgroup() {
        // Removing r7–r8 disconnects {r4, r6, r8, r9} from red subgroup A
        // (they remain attached to blue only through subgroup A, which is
        // the point of scenario S2).
        let toy = toy_example();
        let g0 = toy.seq.graph(0);
        let edges: Vec<_> = g0
            .edges()
            .filter(|&(u, v, _)| (u, v) != (r(7), r(8)))
            .collect();
        let cut = WeightedGraph::from_edges(17, &edges).unwrap();
        let (comp, k) = cut.components();
        assert_eq!(k, 2);
        assert_eq!(comp[r(4)], comp[r(8)]);
        assert_eq!(comp[r(6)], comp[r(9)]);
        assert_ne!(comp[r(8)], comp[r(7)]);
        assert_ne!(comp[r(8)], comp[b(1)]);
    }

    #[test]
    fn exactly_six_changed_edges() {
        let toy = toy_example();
        let changed = toy.seq.changed_edges(0);
        assert_eq!(changed.len(), 5, "exactly S1-S5 change: {changed:?}");
    }

    #[test]
    fn labels_roundtrip() {
        for i in 0..17 {
            assert_eq!(node_index(&node_label(i)), Some(i));
        }
        assert_eq!(node_label(0), "b1");
        assert_eq!(node_label(8), "r1");
        assert_eq!(node_label(16), "r9");
        assert_eq!(node_index("x1"), None);
        assert_eq!(node_index("b9"), None);
        assert_eq!(node_index("r10"), None);
    }

    #[test]
    fn ground_truth_consistent() {
        let toy = toy_example();
        for &(u, v) in &toy.anomalous_edges {
            assert!(toy.anomalous_nodes.contains(&u));
            assert!(toy.anomalous_nodes.contains(&v));
        }
        assert_eq!(toy.anomalous_nodes.len(), 6);
    }
}
