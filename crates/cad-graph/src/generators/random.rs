//! Random graph generators for the scalability study (§4.1.3) and tests.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::WeightedGraph;
use crate::Result;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Sparse symmetric random graph with approximately `m_target` undirected
/// edges and `U(0, 1]` weights.
///
/// This reproduces the workload of §4.1.3: "symmetric random graphs of
/// varying sizes … sparsity level at 1/n", i.e. `m = O(n)`. Edge slots
/// are sampled uniformly; the small number of duplicate draws merge by
/// weight summation, so the realized edge count is ≤ `m_target`.
pub fn sparse_random_graph(n: usize, m_target: usize, seed: u64) -> Result<WeightedGraph> {
    if n < 2 {
        return Err(GraphError::InvalidInput(format!(
            "need at least 2 nodes for random edges, got {n}"
        )));
    }
    let max_edges = n * (n - 1) / 2;
    if m_target > max_edges {
        return Err(GraphError::InvalidInput(format!(
            "m_target {m_target} exceeds the {max_edges} possible edges on {n} nodes"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m_target);
    for _ in 0..m_target {
        let u = rng.random_range(0..n);
        let mut v = rng.random_range(0..n - 1);
        if v >= u {
            v += 1;
        }
        // Weight in (0, 1]: zero would silently drop the edge.
        let w = 1.0 - rng.random::<f64>();
        b.add_edge(u, v, w)?;
    }
    Ok(b.build())
}

/// Erdős–Rényi `G(n, p)` with `U(0, 1]` weights (small graphs / tests).
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Result<WeightedGraph> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidInput(format!(
            "p must be in [0, 1], got {p}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random::<f64>() < p {
                b.add_edge(u, v, 1.0 - rng.random::<f64>())?;
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_graph_sizes() {
        let g = sparse_random_graph(1000, 1000, 1).unwrap();
        assert_eq!(g.n_nodes(), 1000);
        // Duplicate draws merge, so the count can fall slightly short.
        assert!(g.n_edges() <= 1000);
        assert!(g.n_edges() > 900, "too many collisions: {}", g.n_edges());
    }

    #[test]
    fn weights_in_unit_interval() {
        let g = sparse_random_graph(100, 150, 2).unwrap();
        for (_, _, w) in g.edges() {
            assert!(w > 0.0 && w <= 2.0, "weight {w}"); // ≤ 2 with a merge.
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = sparse_random_graph(50, 80, 7).unwrap();
        let b = sparse_random_graph(50, 80, 7).unwrap();
        let c = sparse_random_graph(50, 80, 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(sparse_random_graph(1, 0, 0).is_err());
        assert!(sparse_random_graph(3, 100, 0).is_err());
        assert!(erdos_renyi(5, 1.5, 0).is_err());
        assert!(erdos_renyi(5, -0.1, 0).is_err());
    }

    #[test]
    fn erdos_renyi_extremes() {
        let empty = erdos_renyi(10, 0.0, 3).unwrap();
        assert_eq!(empty.n_edges(), 0);
        let full = erdos_renyi(10, 1.0, 3).unwrap();
        assert_eq!(full.n_edges(), 45);
    }

    #[test]
    fn erdos_renyi_density_plausible() {
        let g = erdos_renyi(60, 0.3, 11).unwrap();
        let expected = 0.3 * (60.0 * 59.0 / 2.0);
        let got = g.n_edges() as f64;
        assert!(
            (got - expected).abs() < 4.0 * expected.sqrt(),
            "{got} vs {expected}"
        );
    }
}
