//! Synthetic graph workloads from the paper's evaluation.

pub mod gmm;
pub mod grid;
pub mod knn;
pub mod random;
pub mod toy;

pub use gmm::{sample_gmm, similarity_graph, GmmParams};
pub use grid::grid_graph;
pub use knn::knn_kernel_graph_1d;
pub use random::{erdos_renyi, sparse_random_graph};
pub use toy::{toy_example, ToyExample};
