//! Rectangular grid graphs (test fixtures, precipitation location grid).

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::WeightedGraph;
use crate::Result;

/// `rows × cols` 4-neighbour grid with uniform edge weight `w`.
///
/// Node `(r, c)` has index `r * cols + c`.
pub fn grid_graph(rows: usize, cols: usize, w: f64) -> Result<WeightedGraph> {
    if rows == 0 || cols == 0 {
        return Err(GraphError::InvalidInput(format!(
            "empty grid {rows}x{cols}"
        )));
    }
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for r in 0..rows {
        for c in 0..cols {
            let i = r * cols + c;
            if c + 1 < cols {
                b.add_edge(i, i + 1, w)?;
            }
            if r + 1 < rows {
                b.add_edge(i, i + cols, w)?;
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_edge_count() {
        // rows*(cols-1) horizontal + (rows-1)*cols vertical.
        let g = grid_graph(3, 4, 1.0).unwrap();
        assert_eq!(g.n_nodes(), 12);
        assert_eq!(g.n_edges(), 3 * 3 + 2 * 4);
        assert!(g.is_connected());
    }

    #[test]
    fn corner_and_interior_degrees() {
        let g = grid_graph(3, 3, 2.0).unwrap();
        assert_eq!(g.degree_count(0), 2); // corner
        assert_eq!(g.degree_count(1), 3); // edge
        assert_eq!(g.degree_count(4), 4); // center
        assert_eq!(g.degree(4), 8.0);
    }

    #[test]
    fn degenerate_grids() {
        let line = grid_graph(1, 5, 1.0).unwrap();
        assert_eq!(line.n_edges(), 4);
        let single = grid_graph(1, 1, 1.0).unwrap();
        assert_eq!(single.n_edges(), 0);
        assert!(grid_graph(0, 5, 1.0).is_err());
    }
}
