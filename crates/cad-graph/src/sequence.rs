//! Temporal sequences of graph instances over a shared vertex set.

use crate::error::GraphError;
use crate::graph::WeightedGraph;
use crate::Result;

/// A temporal sequence `G_1, …, G_T` of weighted undirected graphs over
/// one fixed vertex set — the input of every dynamic-graph detector in
/// this workspace (paper §2).
#[derive(Debug, Clone)]
pub struct GraphSequence {
    graphs: Vec<WeightedGraph>,
    n_nodes: usize,
}

impl GraphSequence {
    /// Wrap a list of instances, validating that all share a vertex-set
    /// size and that there are at least two (one transition).
    pub fn new(graphs: Vec<WeightedGraph>) -> Result<Self> {
        if graphs.len() < 2 {
            return Err(GraphError::SequenceTooShort {
                required: 2,
                found: graphs.len(),
            });
        }
        let n_nodes = graphs[0].n_nodes();
        for (t, g) in graphs.iter().enumerate() {
            if g.n_nodes() != n_nodes {
                return Err(GraphError::MixedNodeCounts {
                    expected: n_nodes,
                    found: g.n_nodes(),
                    at: t,
                });
            }
        }
        Ok(GraphSequence { graphs, n_nodes })
    }

    /// Number of instances `T`.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// Always false: construction requires ≥ 2 instances.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of transitions `T − 1`.
    pub fn n_transitions(&self) -> usize {
        self.graphs.len() - 1
    }

    /// Shared vertex-set size `n`.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Instance at time `t` (0-based).
    pub fn graph(&self, t: usize) -> &WeightedGraph {
        &self.graphs[t]
    }

    /// All instances.
    pub fn graphs(&self) -> &[WeightedGraph] {
        &self.graphs
    }

    /// Iterate consecutive pairs `(t, G_t, G_{t+1})`.
    pub fn transitions(&self) -> impl Iterator<Item = (usize, &WeightedGraph, &WeightedGraph)> {
        self.graphs
            .windows(2)
            .enumerate()
            .map(|(t, w)| (t, &w[0], &w[1]))
    }

    /// Undirected edges whose weight differs between `G_t` and `G_{t+1}`,
    /// as `(u, v, w_t, w_{t+1})` with `u < v`.
    ///
    /// This is the support of the `|A_{t+1} − A_t|` factor of the CAD
    /// score: every edge outside this set has `ΔE_t = 0` regardless of
    /// commute times, which is what keeps scoring `O(m)`.
    pub fn changed_edges(&self, t: usize) -> Vec<(usize, usize, f64, f64)> {
        let a = self.graphs[t].adjacency();
        let b = self.graphs[t + 1].adjacency();
        let diff = b
            .linear_combination(1.0, a, -1.0)
            .expect("same vertex-set size by construction");
        diff.iter_upper()
            .map(|(i, j, _)| (i, j, a.get(i, j), b.get(i, j)))
            .collect()
    }

    /// Average number of non-zero-weight edges per instance (paper's `m`).
    pub fn mean_edges(&self) -> f64 {
        let total: usize = self.graphs.iter().map(|g| g.n_edges()).sum();
        total as f64 / self.graphs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(edges: &[(usize, usize, f64)]) -> WeightedGraph {
        WeightedGraph::from_edges(4, edges).unwrap()
    }

    fn seq() -> GraphSequence {
        GraphSequence::new(vec![
            g(&[(0, 1, 1.0), (1, 2, 2.0)]),
            g(&[(0, 1, 1.0), (1, 2, 3.0), (2, 3, 0.5)]),
            g(&[(0, 1, 1.0), (1, 2, 3.0), (2, 3, 0.5)]),
        ])
        .unwrap()
    }

    #[test]
    fn lengths_and_access() {
        let s = seq();
        assert_eq!(s.len(), 3);
        assert_eq!(s.n_transitions(), 2);
        assert_eq!(s.n_nodes(), 4);
        assert_eq!(s.graph(0).n_edges(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn rejects_too_short() {
        assert!(matches!(
            GraphSequence::new(vec![g(&[])]),
            Err(GraphError::SequenceTooShort { .. })
        ));
    }

    #[test]
    fn rejects_mixed_sizes() {
        let g5 = WeightedGraph::from_edges(5, &[]).unwrap();
        assert!(matches!(
            GraphSequence::new(vec![g(&[]), g5]),
            Err(GraphError::MixedNodeCounts { at: 1, .. })
        ));
    }

    #[test]
    fn transitions_iterate_pairs() {
        let s = seq();
        let ts: Vec<usize> = s.transitions().map(|(t, _, _)| t).collect();
        assert_eq!(ts, vec![0, 1]);
    }

    #[test]
    fn changed_edges_first_transition() {
        let s = seq();
        let ch = s.changed_edges(0);
        assert_eq!(ch, vec![(1, 2, 2.0, 3.0), (2, 3, 0.0, 0.5)]);
    }

    #[test]
    fn changed_edges_empty_on_identical() {
        let s = seq();
        assert!(s.changed_edges(1).is_empty());
    }

    #[test]
    fn mean_edges_average() {
        let s = seq();
        assert!((s.mean_edges() - (2.0 + 3.0 + 3.0) / 3.0).abs() < 1e-12);
    }
}
