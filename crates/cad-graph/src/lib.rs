//! Weighted undirected graphs and dynamic graph sequences.
//!
//! The CAD problem framework (paper §2) works with a temporal sequence of
//! weighted undirected graphs over a *fixed* vertex set, represented by
//! symmetric adjacency matrices. This crate provides:
//!
//! * [`WeightedGraph`] — an immutable CSR-backed graph with Laplacian /
//!   degree / volume accessors, built through [`GraphBuilder`];
//! * [`GraphSequence`] — a validated sequence of graph instances sharing
//!   one vertex set, the input type of every detector in the workspace;
//! * [`algo`] — traversal, Dijkstra shortest paths and the centrality
//!   measures needed by the CLC baseline;
//! * [`io`] — plain-text edge-list reading/writing for graphs and
//!   sequences (the CLI's interchange format);
//! * [`generators`] — every synthetic workload of the paper's evaluation:
//!   the 17-node toy example of Figure 1, Gaussian-mixture similarity
//!   graphs (§4.1), sparse random graphs (§4.1.3), k-nearest-neighbour
//!   kernel graphs (§4.2.3) and grid graphs for tests.

#![warn(missing_docs)]

pub mod aggregate;
pub mod algo;
pub mod builder;
pub mod error;
pub mod generators;
pub mod graph;
pub mod io;
pub mod sequence;
pub mod stats;
pub mod subgraph;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::WeightedGraph;
pub use sequence::GraphSequence;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GraphError>;
