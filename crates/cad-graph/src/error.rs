//! Error type for graph construction and analysis.

use std::fmt;

/// Errors produced while building or analysing graphs.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// Node index out of range for the declared vertex set.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the graph.
        n_nodes: usize,
    },
    /// Edge weight was negative, NaN or infinite.
    InvalidWeight {
        /// Endpoints of the offending edge.
        edge: (usize, usize),
        /// The offending weight.
        weight: f64,
    },
    /// Self-loops are not representable in the paper's framework
    /// (adjacency diagonals are zero throughout).
    SelfLoop {
        /// The node with the attempted self-loop.
        node: usize,
    },
    /// A graph sequence mixed instances with different vertex-set sizes.
    MixedNodeCounts {
        /// Size of the first instance.
        expected: usize,
        /// Size of the offending instance.
        found: usize,
        /// Index of the offending instance.
        at: usize,
    },
    /// A sequence operation needs at least this many instances.
    SequenceTooShort {
        /// Instances required.
        required: usize,
        /// Instances available.
        found: usize,
    },
    /// An error propagated from the linear-algebra substrate.
    Linalg(cad_linalg::LinalgError),
    /// Free-form invalid input (generator parameters etc.).
    InvalidInput(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n_nodes } => {
                write!(f, "node {node} out of range for graph with {n_nodes} nodes")
            }
            GraphError::InvalidWeight { edge, weight } => {
                write!(
                    f,
                    "invalid weight {weight} on edge ({}, {})",
                    edge.0, edge.1
                )
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop on node {node}"),
            GraphError::MixedNodeCounts {
                expected,
                found,
                at,
            } => write!(
                f,
                "graph sequence instance {at} has {found} nodes, expected {expected}"
            ),
            GraphError::SequenceTooShort { required, found } => {
                write!(
                    f,
                    "sequence needs at least {required} instances, found {found}"
                )
            }
            GraphError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            GraphError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cad_linalg::LinalgError> for GraphError {
    fn from(e: cad_linalg::LinalgError) -> Self {
        GraphError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(GraphError::NodeOutOfRange {
            node: 5,
            n_nodes: 3
        }
        .to_string()
        .contains("node 5"));
        assert!(GraphError::SelfLoop { node: 2 }
            .to_string()
            .contains("self-loop"));
        assert!(GraphError::InvalidWeight {
            edge: (0, 1),
            weight: -1.0
        }
        .to_string()
        .contains("-1"));
    }

    #[test]
    fn linalg_error_wraps_with_source() {
        use std::error::Error;
        let e: GraphError = cad_linalg::LinalgError::NotSquare { rows: 2, cols: 3 }.into();
        assert!(e.source().is_some());
    }
}
