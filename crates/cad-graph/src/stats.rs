//! Descriptive statistics of a graph instance.
//!
//! Used by the dataset simulators' validation tests (e.g. checking the
//! simulated e-mail network is as sparse as the real corpus) and by the
//! CLI's summary output.

use crate::graph::WeightedGraph;

/// Summary statistics of one weighted graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub n_nodes: usize,
    /// Number of undirected edges with non-zero weight.
    pub n_edges: usize,
    /// Edge density `m / (n(n−1)/2)`.
    pub density: f64,
    /// Mean unweighted degree.
    pub mean_degree: f64,
    /// Maximum unweighted degree.
    pub max_degree: usize,
    /// Number of isolated (degree-0) nodes.
    pub isolated: usize,
    /// Minimum / mean / maximum edge weight (zeros when no edges).
    pub weight_min: f64,
    /// Mean edge weight.
    pub weight_mean: f64,
    /// Maximum edge weight.
    pub weight_max: f64,
    /// Global (transitivity) clustering coefficient:
    /// `3·triangles / connected-triples`, ignoring weights.
    pub clustering: f64,
    /// Number of connected components.
    pub n_components: usize,
}

impl GraphStats {
    /// Compute all statistics (`O(Σ deg²)` for the triangle count).
    pub fn compute(g: &WeightedGraph) -> Self {
        let n = g.n_nodes();
        let m = g.n_edges();
        let degrees: Vec<usize> = (0..n).map(|u| g.degree_count(u)).collect();
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        let isolated = degrees.iter().filter(|&&d| d == 0).count();
        let mean_degree = if n > 0 {
            2.0 * m as f64 / n as f64
        } else {
            0.0
        };
        let density = if n >= 2 {
            m as f64 / (n as f64 * (n as f64 - 1.0) / 2.0)
        } else {
            0.0
        };

        let (mut wmin, mut wmax, mut wsum) = (f64::INFINITY, 0.0f64, 0.0f64);
        for (_, _, w) in g.edges() {
            wmin = wmin.min(w);
            wmax = wmax.max(w);
            wsum += w;
        }
        let (weight_min, weight_mean, weight_max) = if m == 0 {
            (0.0, 0.0, 0.0)
        } else {
            (wmin, wsum / m as f64, wmax)
        };

        // Triangles: for each node, count adjacent neighbour pairs that
        // are themselves adjacent. Each triangle is seen 3 times.
        let mut triangles3 = 0usize;
        let mut triples = 0usize;
        for u in 0..n {
            let neigh: Vec<usize> = g.neighbors(u).map(|(v, _)| v).collect();
            let d = neigh.len();
            triples += d * d.saturating_sub(1) / 2;
            for (ai, &a) in neigh.iter().enumerate() {
                for &b in &neigh[ai + 1..] {
                    if g.has_edge(a, b) {
                        triangles3 += 1;
                    }
                }
            }
        }
        let clustering = if triples > 0 {
            triangles3 as f64 / triples as f64
        } else {
            0.0
        };

        let (_, n_components) = g.components();
        GraphStats {
            n_nodes: n,
            n_edges: m,
            density,
            mean_degree,
            max_degree,
            isolated,
            weight_min,
            weight_mean,
            weight_max,
            clustering,
            n_components,
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} m={} density={:.4} deg(mean/max)={:.1}/{} isolated={} \
             w(min/mean/max)={:.3}/{:.3}/{:.3} clustering={:.3} components={}",
            self.n_nodes,
            self.n_edges,
            self.density,
            self.mean_degree,
            self.max_degree,
            self.isolated,
            self.weight_min,
            self.weight_mean,
            self.weight_max,
            self.clustering,
            self.n_components
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_graph() {
        let g = WeightedGraph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]).unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.n_nodes, 3);
        assert_eq!(s.n_edges, 3);
        assert_eq!(s.density, 1.0);
        assert_eq!(s.clustering, 1.0);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.weight_min, 1.0);
        assert_eq!(s.weight_mean, 2.0);
        assert_eq!(s.weight_max, 3.0);
        assert_eq!(s.n_components, 1);
    }

    #[test]
    fn path_has_no_triangles() {
        let g = WeightedGraph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.clustering, 0.0);
        assert!((s.mean_degree - 1.5).abs() < 1e-12);
    }

    #[test]
    fn isolated_and_components() {
        let g = WeightedGraph::from_edges(5, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.isolated, 1);
        assert_eq!(s.n_components, 3);
    }

    #[test]
    fn empty_graph() {
        let g = WeightedGraph::from_edges(4, &[]).unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.n_edges, 0);
        assert_eq!(s.weight_mean, 0.0);
        assert_eq!(s.clustering, 0.0);
        assert_eq!(s.isolated, 4);
    }

    #[test]
    fn display_compact() {
        let g = WeightedGraph::from_edges(3, &[(0, 1, 1.0)]).unwrap();
        let text = GraphStats::compute(&g).to_string();
        assert!(text.contains("n=3"));
        assert!(text.contains("components=2"));
    }
}
