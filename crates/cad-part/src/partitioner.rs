//! Graph partitioner: connected components first, then a greedy BFS
//! balanced-block splitter.
//!
//! Both modes are fully deterministic: components are numbered by
//! smallest contained vertex id, BFS seeds each component at its
//! smallest vertex and visits neighbors in CSR adjacency order, and
//! blocks are consecutive chunks of that order. The same graph and spec
//! therefore always yield the same layout, which is what lets the
//! `cad-store` cache key partitioned artifacts by `(snapshot, engine,
//! spec)` alone.

use cad_commute::Result;
use cad_commute::{PartitionMode, PartitionSpec};
use cad_graph::{GraphError, WeightedGraph};

/// A concrete block layout for one graph instance.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Realised block count (`Bfs` targets the spec's count but rounds
    /// to whole per-component chunks; `Components` yields one block per
    /// component).
    pub n_blocks: usize,
    /// Block id per vertex. Every block is contained in exactly one
    /// connected component.
    pub block_of: Vec<u32>,
    /// Connected-component id per vertex (as [`WeightedGraph::components`]).
    pub component_of: Vec<u32>,
    /// Number of connected components.
    pub n_components: usize,
    /// Number of cut edges (endpoints in different blocks). `0` exactly
    /// when every block is a whole component.
    pub cut_edges: usize,
    /// `true` for endpoints of cut edges — the boundary-vertex
    /// interface set `S`.
    pub boundary: Vec<bool>,
    /// The mode that actually ran (`Auto` resolved to `Components` or
    /// `Bfs`).
    pub mode: PartitionMode,
}

/// Partition `g` per `spec`.
///
/// `Auto` resolves to `Components` when the graph has at least
/// `spec.blocks` connected components (blocks are then exact), else
/// `Bfs`. Rejects `blocks == 0`.
pub fn partition(g: &WeightedGraph, spec: PartitionSpec) -> Result<Partition> {
    if spec.blocks == 0 {
        return Err(GraphError::InvalidInput(
            "partition block count must be ≥ 1".into(),
        ));
    }
    let n = g.n_nodes();
    let (component_of, n_components) = g.components();
    let mode = match spec.mode {
        PartitionMode::Components => PartitionMode::Components,
        PartitionMode::Bfs => PartitionMode::Bfs,
        PartitionMode::Auto => {
            if n_components >= spec.blocks {
                PartitionMode::Components
            } else {
                PartitionMode::Bfs
            }
        }
    };

    let (block_of, n_blocks) = match mode {
        PartitionMode::Components => (component_of.clone(), n_components),
        PartitionMode::Bfs => bfs_blocks(g, &component_of, n_components, spec.blocks),
        PartitionMode::Auto => unreachable!("Auto resolved above"),
    };

    let mut boundary = vec![false; n];
    let mut cut_edges = 0usize;
    for (u, v, _) in g.edges() {
        if block_of[u] != block_of[v] {
            cut_edges += 1;
            boundary[u] = true;
            boundary[v] = true;
        }
    }

    Ok(Partition {
        n_blocks,
        block_of,
        component_of,
        n_components,
        cut_edges,
        boundary,
        mode,
    })
}

/// Greedy balanced splitter: per-component BFS order, cut into
/// consecutive chunks of `⌈n / target⌉`. Components are visited in
/// order of their smallest vertex, so block ids are stable; a component
/// smaller than one chunk stays a single (whole-component, hence exact)
/// block.
fn bfs_blocks(
    g: &WeightedGraph,
    component_of: &[u32],
    n_components: usize,
    target: usize,
) -> (Vec<u32>, usize) {
    let n = g.n_nodes();
    let chunk = n.div_ceil(target).max(1);
    let mut block_of = vec![u32::MAX; n];
    let mut next_block = 0u32;
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    let _ = n_components;
    for seed in 0..n {
        if visited[seed] {
            continue;
        }
        // BFS over seed's component, in adjacency order.
        let mut order = Vec::new();
        visited[seed] = true;
        queue.push_back(seed);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for (u, _) in g.neighbors(v) {
                if !visited[u] && component_of[u] == component_of[seed] {
                    visited[u] = true;
                    queue.push_back(u);
                }
            }
        }
        for piece in order.chunks(chunk) {
            for &v in piece {
                block_of[v] = next_block;
            }
            next_block += 1;
        }
    }
    (block_of, next_block as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles(bridge: bool) -> WeightedGraph {
        let mut edges = vec![
            (0, 1, 1.0),
            (1, 2, 1.0),
            (0, 2, 1.0),
            (3, 4, 1.0),
            (4, 5, 1.0),
            (3, 5, 1.0),
        ];
        if bridge {
            edges.push((2, 3, 0.5));
        }
        WeightedGraph::from_edges(6, &edges).unwrap()
    }

    #[test]
    fn components_mode_has_no_cut() {
        let g = two_triangles(false);
        let p = partition(
            &g,
            PartitionSpec {
                blocks: 2,
                mode: PartitionMode::Components,
            },
        )
        .unwrap();
        assert_eq!(p.n_blocks, 2);
        assert_eq!(p.cut_edges, 0);
        assert!(p.boundary.iter().all(|&b| !b));
        assert_eq!(p.block_of[0], p.block_of[2]);
        assert_ne!(p.block_of[0], p.block_of[3]);
    }

    #[test]
    fn auto_picks_components_when_enough_then_bfs() {
        let disconnected = two_triangles(false);
        let p = partition(&disconnected, PartitionSpec::auto(2)).unwrap();
        assert_eq!(p.mode, PartitionMode::Components);
        assert_eq!(p.cut_edges, 0);

        let connected = two_triangles(true);
        let p = partition(&connected, PartitionSpec::auto(2)).unwrap();
        assert_eq!(p.mode, PartitionMode::Bfs);
        assert_eq!(p.n_blocks, 2);
        assert!(p.cut_edges > 0, "a split connected graph has a cut");
        // Boundary = endpoints of cut edges only.
        for (u, v, _) in connected.edges() {
            if p.block_of[u] != p.block_of[v] {
                assert!(p.boundary[u] && p.boundary[v]);
            }
        }
    }

    #[test]
    fn bfs_blocks_are_balanced_and_component_local() {
        let g = two_triangles(true);
        let p = partition(
            &g,
            PartitionSpec {
                blocks: 3,
                mode: PartitionMode::Bfs,
            },
        )
        .unwrap();
        assert_eq!(p.n_blocks, 3);
        let mut sizes = vec![0usize; p.n_blocks];
        for v in 0..6 {
            sizes[p.block_of[v] as usize] += 1;
            for w in 0..6 {
                if p.block_of[v] == p.block_of[w] {
                    assert_eq!(p.component_of[v], p.component_of[w]);
                }
            }
        }
        assert!(sizes.iter().all(|&s| s > 0 && s <= 2));
    }

    #[test]
    fn deterministic_layout() {
        let g = two_triangles(true);
        let a = partition(&g, PartitionSpec::auto(2)).unwrap();
        let b = partition(&g, PartitionSpec::auto(2)).unwrap();
        assert_eq!(a.block_of, b.block_of);
        assert_eq!(a.cut_edges, b.cut_edges);
    }

    #[test]
    fn rejects_zero_blocks() {
        let g = two_triangles(false);
        assert!(partition(&g, PartitionSpec::auto(0)).is_err());
    }

    #[test]
    fn oversubscribed_blocks_degenerate_to_singletons() {
        let g = two_triangles(true);
        let p = partition(
            &g,
            PartitionSpec {
                blocks: 100,
                mode: PartitionMode::Bfs,
            },
        )
        .unwrap();
        assert_eq!(p.n_blocks, 6);
        assert_eq!(p.cut_edges, g.n_edges());
    }
}
