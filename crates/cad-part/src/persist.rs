//! Partitioned-oracle serialization — the `cad-store` artifact format
//! for [`PartitionedOracle`].
//!
//! Mirrors `cad_commute::persist` byte-for-byte in spirit: every `f64`
//! is stored as its raw IEEE-754 bit pattern (little-endian), so a
//! loaded oracle answers queries bit-identically to the instance that
//! was saved. Layout: `magic "CADPART\0" · version u32 · tag u8 ·
//! payload` with tag 1 = exact blocks, tag 2 = embedding. The store
//! handles integrity (CRC); this module bounds-checks every read and
//! rejects truncated or trailing bytes.
//!
//! [`decode_oracle`] is the store-facing entry point: it dispatches on
//! the magic, falling back to [`cad_commute::oracle_from_bytes`] for
//! monolithic artifacts — partitioned requests for the ablation engines
//! (shortest-path, corrected) build monolithically, so their cached
//! artifacts carry the `CADORCL` magic even under a partitioned cache
//! key.

use crate::blocks::{Block, ExactBlocks, Loc};
use crate::oracle::{Inner, PartitionedOracle};
use cad_commute::{PartitionInfo, Result, SharedOracle};
use cad_graph::GraphError;
use cad_linalg::DenseMatrix;

/// Partitioned-artifact magic, 8 bytes.
pub const PART_MAGIC: &[u8; 8] = b"CADPART\0";
/// Partitioned-artifact format version.
pub const PART_FORMAT_VERSION: u32 = 1;

const TAG_EXACT: u8 = 1;
const TAG_EMBEDDING: u8 = 2;

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32s(out: &mut Vec<u8>, values: &[u32]) {
    out.reserve(4 * values.len());
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_f64s(out: &mut Vec<u8>, values: &[f64]) {
    out.reserve(8 * values.len());
    for &v in values {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

/// Serialize a [`PartitionedOracle`] (called via
/// `DistanceOracle::to_store_bytes`).
pub(crate) fn to_bytes(o: &PartitionedOracle) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(PART_MAGIC);
    out.extend_from_slice(&PART_FORMAT_VERSION.to_le_bytes());
    out.push(match o.inner {
        Inner::Exact(_) => TAG_EXACT,
        Inner::Embedding { .. } => TAG_EMBEDDING,
    });
    put_u64(&mut out, o.n as u64);
    put_f64(&mut out, o.volume);
    put_u64(&mut out, o.info.blocks as u64);
    put_u64(&mut out, o.info.boundary_edges as u64);
    match &o.inner {
        Inner::Embedding { coords, k } => {
            put_u64(&mut out, *k as u64);
            put_f64s(&mut out, coords);
        }
        Inner::Exact(b) => {
            put_u32s(&mut out, &b.comp_of);
            put_u64(&mut out, b.comp_size.len() as u64);
            put_u64(&mut out, b.sep.len() as u64);
            put_u32s(&mut out, &b.sep);
            put_f64s(&mut out, b.s_pinv.data());
            match &b.diag {
                Some(d) => {
                    out.push(1);
                    put_f64s(&mut out, d);
                }
                None => out.push(0),
            }
            put_u64(&mut out, b.blocks.len() as u64);
            for block in &b.blocks {
                out.push(u8::from(block.whole));
                put_u64(&mut out, block.nodes.len() as u64);
                put_u32s(&mut out, &block.nodes);
                put_f64s(&mut out, block.m.data());
                put_f64s(&mut out, block.w.data());
            }
        }
    }
    out
}

struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> std::result::Result<&'a [u8], GraphError> {
        if self.buf.len() < n {
            return Err(invalid(format!(
                "partitioned artifact truncated: wanted {n} bytes, {} left",
                self.buf.len()
            )));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn u64(&mut self) -> std::result::Result<u64, GraphError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn usize_checked(&mut self, what: &str) -> std::result::Result<usize, GraphError> {
        let v = self.u64()?;
        if v > (1 << 32) {
            return Err(invalid(format!(
                "partitioned artifact: implausible {what} {v}"
            )));
        }
        Ok(v as usize)
    }

    fn f64_bits(&mut self) -> std::result::Result<f64, GraphError> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8"),
        )))
    }

    fn f64s(&mut self, n: usize, what: &str) -> std::result::Result<Vec<f64>, GraphError> {
        let raw = self
            .take(n.checked_mul(8).ok_or_else(|| {
                invalid(format!("partitioned artifact: {what} length overflows"))
            })?)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8"))))
            .collect())
    }

    fn u32s(&mut self, n: usize, what: &str) -> std::result::Result<Vec<u32>, GraphError> {
        let raw = self
            .take(n.checked_mul(4).ok_or_else(|| {
                invalid(format!("partitioned artifact: {what} length overflows"))
            })?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4")))
            .collect())
    }

    fn byte(&mut self) -> std::result::Result<u8, GraphError> {
        Ok(self.take(1)?[0])
    }

    fn finish(&self, what: &str) -> std::result::Result<(), GraphError> {
        if !self.buf.is_empty() {
            return Err(invalid(format!(
                "partitioned artifact: {} trailing bytes after {what}",
                self.buf.len()
            )));
        }
        Ok(())
    }
}

fn invalid(msg: String) -> GraphError {
    GraphError::InvalidInput(msg)
}

fn matrix(
    cur: &mut Cursor<'_>,
    rows: usize,
    cols: usize,
    what: &str,
) -> std::result::Result<DenseMatrix, GraphError> {
    let len = rows
        .checked_mul(cols)
        .ok_or_else(|| invalid(format!("partitioned artifact: {what} size overflows")))?;
    let data = cur.f64s(len, what)?;
    DenseMatrix::from_vec(rows, cols, data).map_err(GraphError::from)
}

fn decode_exact(cur: &mut Cursor<'_>, n: usize) -> Result<ExactBlocks> {
    let comp_of = cur.u32s(n, "component ids")?;
    let n_components = cur.usize_checked("component count")?;
    let mut comp_size = vec![0usize; n_components];
    for &c in &comp_of {
        let c = c as usize;
        if c >= n_components {
            return Err(invalid(format!(
                "partitioned artifact: component id {c} out of range"
            )));
        }
        comp_size[c] += 1;
    }
    let ns = cur.usize_checked("boundary size")?;
    if ns > n {
        return Err(invalid(format!(
            "partitioned artifact: boundary size {ns} exceeds n = {n}"
        )));
    }
    let sep = cur.u32s(ns, "boundary vertices")?;
    let s_pinv = matrix(cur, ns, ns, "interface pseudoinverse")?;
    let diag = match cur.byte()? {
        0 => None,
        1 => Some(cur.f64s(n, "diagonal")?),
        other => {
            return Err(invalid(format!(
                "partitioned artifact: bad diagonal flag {other}"
            )))
        }
    };
    let n_blocks = cur.usize_checked("block count")?;
    let mut blocks = Vec::with_capacity(n_blocks.min(1 << 20));
    for k in 0..n_blocks {
        let whole = match cur.byte()? {
            0 => false,
            1 => true,
            other => {
                return Err(invalid(format!(
                    "partitioned artifact: block {k} bad whole flag {other}"
                )))
            }
        };
        let ni = cur.usize_checked("block size")?;
        if ni > n {
            return Err(invalid(format!(
                "partitioned artifact: block {k} size {ni} exceeds n = {n}"
            )));
        }
        let nodes = cur.u32s(ni, "block nodes")?;
        let m = matrix(cur, ni, ni, "block inverse")?;
        let w_rows = if whole { 0 } else { ni };
        let w = matrix(cur, w_rows, ns, "block coupling")?;
        blocks.push(Block { nodes, whole, m, w });
    }

    // Rebuild the per-vertex location table and require exact coverage:
    // every vertex is either boundary or interior of exactly one block.
    let mut loc = vec![None; n];
    for (q, &v) in sep.iter().enumerate() {
        let v = v as usize;
        if v >= n || loc[v].is_some() {
            return Err(invalid(format!(
                "partitioned artifact: bad boundary vertex {v}"
            )));
        }
        loc[v] = Some(Loc::Boundary { pos: q as u32 });
    }
    for (k, block) in blocks.iter().enumerate() {
        for (p, &v) in block.nodes.iter().enumerate() {
            let v = v as usize;
            if v >= n || loc[v].is_some() {
                return Err(invalid(format!(
                    "partitioned artifact: vertex {v} multiply assigned"
                )));
            }
            loc[v] = Some(Loc::Interior {
                block: k as u32,
                pos: p as u32,
            });
        }
    }
    let loc: Vec<Loc> = loc
        .into_iter()
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| invalid("partitioned artifact: uncovered vertex".into()))?;

    Ok(ExactBlocks {
        n,
        comp_of,
        comp_size,
        blocks,
        loc,
        sep,
        s_pinv,
        diag,
    })
}

/// Reconstitute an oracle from store bytes.
///
/// Partitioned artifacts (`CADPART` magic) decode here; anything else
/// is handed to [`cad_commute::oracle_from_bytes`], which covers the
/// monolithic artifacts that partitioned requests for ablation engines
/// produce. Never panics on hostile input.
pub fn decode_oracle(bytes: &[u8]) -> Result<SharedOracle> {
    if bytes.len() < 8 || &bytes[..8] != PART_MAGIC {
        return cad_commute::oracle_from_bytes(bytes);
    }
    let mut cur = Cursor { buf: &bytes[8..] };
    let version = u32::from_le_bytes(cur.take(4)?.try_into().expect("4"));
    if version != PART_FORMAT_VERSION {
        return Err(invalid(format!(
            "partitioned artifact version {version} unsupported (this build reads {PART_FORMAT_VERSION})"
        )));
    }
    let tag = cur.byte()?;
    let n = cur.usize_checked("node count")?;
    let volume = cur.f64_bits()?;
    let info = PartitionInfo {
        blocks: cur.usize_checked("block count")?,
        boundary_edges: cur.usize_checked("boundary edge count")?,
    };
    let (inner, backend) = match tag {
        TAG_EMBEDDING => {
            let k = cur.usize_checked("embedding dimension")?;
            let len = n
                .checked_mul(k)
                .ok_or_else(|| invalid("partitioned artifact: n·k overflows".into()))?;
            let coords = cur.f64s(len, "coordinates")?;
            cur.finish("partitioned embedding")?;
            (Inner::Embedding { coords, k }, "partitioned-embedding")
        }
        TAG_EXACT => {
            let blocks = decode_exact(&mut cur, n)?;
            cur.finish("partitioned exact oracle")?;
            (Inner::Exact(blocks), "partitioned-exact")
        }
        other => {
            return Err(invalid(format!(
                "partitioned artifact: unknown tag {other}"
            )))
        }
    };
    let jl_dim = match &inner {
        Inner::Embedding { k, .. } => Some(*k),
        Inner::Exact(_) => None,
    };
    Ok(Box::new(PartitionedOracle {
        n,
        volume,
        info,
        inner,
        // Truthful provenance: loading performed no solves.
        build_stats: cad_obs::OracleBuildStats {
            backend,
            build_secs: 0.0,
            jl_dim,
            solves: Vec::new(),
        },
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cad_commute::{EmbeddingOptions, EngineOptions, PartitionMode, PartitionSpec};
    use cad_graph::WeightedGraph;

    fn graph() -> WeightedGraph {
        WeightedGraph::from_edges(
            9,
            &[
                (0, 1, 1.5),
                (1, 2, 0.75),
                (2, 3, 2.0),
                (3, 4, 1.0),
                (0, 4, 0.5),
                (4, 5, 1.0),
                (5, 6, 1.25),
                (7, 8, 3.0), // second component
            ],
        )
        .unwrap()
    }

    fn round_trip(opts: &EngineOptions, spec: PartitionSpec) {
        let g = graph();
        let fresh = PartitionedOracle::build(&g, opts, spec, 1).unwrap();
        let loaded = decode_oracle(&fresh.to_store_bytes()).unwrap();
        assert_eq!(loaded.kind(), fresh.kind());
        assert_eq!(loaded.n_nodes(), fresh.n_nodes());
        assert_eq!(loaded.partition_info(), fresh.partition_info());
        assert_eq!(
            loaded.volume().map(f64::to_bits),
            fresh.volume().map(f64::to_bits)
        );
        for i in 0..g.n_nodes() {
            for j in 0..g.n_nodes() {
                assert_eq!(
                    loaded.distance(i, j).to_bits(),
                    fresh.distance(i, j).to_bits(),
                    "distance({i}, {j})"
                );
            }
        }
        let stats = loaded.build_stats().expect("loaded oracles keep stats");
        assert_eq!(stats.build_secs, 0.0);
    }

    #[test]
    fn exact_round_trips_bit_identically() {
        for mode in [
            PartitionMode::Bfs,
            PartitionMode::Components,
            PartitionMode::Auto,
        ] {
            round_trip(&EngineOptions::Exact, PartitionSpec { blocks: 3, mode });
        }
    }

    #[test]
    fn embedding_round_trips_bit_identically() {
        round_trip(
            &EngineOptions::Approximate(EmbeddingOptions {
                k: 10,
                ..Default::default()
            }),
            PartitionSpec::auto(2),
        );
    }

    #[test]
    fn monolithic_fallback_artifacts_decode_too() {
        let g = graph();
        let spec = PartitionSpec::auto(2);
        let o = PartitionedOracle::build(&g, &EngineOptions::Corrected, spec, 1).unwrap();
        let loaded = decode_oracle(&o.to_store_bytes()).unwrap();
        assert_eq!(loaded.kind(), o.kind());
        assert_eq!(loaded.distance(0, 6).to_bits(), o.distance(0, 6).to_bits());
    }

    #[test]
    fn damaged_artifacts_error_instead_of_panicking() {
        let g = graph();
        let spec = PartitionSpec {
            blocks: 3,
            mode: PartitionMode::Bfs,
        };
        let bytes = PartitionedOracle::build(&g, &EngineOptions::Exact, spec, 1)
            .unwrap()
            .to_store_bytes();
        for cut in 0..bytes.len().min(96) {
            assert!(decode_oracle(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut extended = bytes.clone();
        extended.push(7);
        assert!(decode_oracle(&extended).is_err());
        let mut bad_tag = bytes.clone();
        bad_tag[12] = 9;
        assert!(decode_oracle(&bad_tag).is_err());
        let mut bad_version = bytes;
        bad_version[8] = 42;
        assert!(decode_oracle(&bad_version).is_err());
    }
}
