//! Per-block reduced Laplacians and the boundary interface solve.
//!
//! # The math
//!
//! Order the vertices of one graph as interiors `I = I_1 ∪ … ∪ I_p`
//! (per block) plus the boundary set `S` (endpoints of cut edges).
//! Interiors of different blocks share no edges — any cross-block edge
//! has both endpoints in `S` — so `L_II` is block-diagonal and each
//! `L_{I_k I_k}` is SPD (every interior piece of a connected component
//! touches `S`). Eliminating the interiors leaves the Schur complement
//! on the boundary,
//!
//! ```text
//! S_c = L_SS − Σ_k L_{S I_k} · L_{I_k I_k}⁻¹ · L_{I_k S}
//! ```
//!
//! which is itself a weighted Laplacian on `S` (Kron reduction), so its
//! pseudoinverse `S_c⁺` plays the same role globally that `L⁺` plays
//! monolithically. For any right-hand side `b` that is mean-zero per
//! component,
//!
//! ```text
//! bᵀ L⁺ b = b_Iᵀ M b_I + rhsᵀ S_c⁺ rhs,
//! M = diag(L_{I_k I_k}⁻¹),   W_k = M_k L_{I_k S},
//! rhs = b_S − Σ_k W_kᵀ b_{I_k}
//! ```
//!
//! — exact, not approximate: the elimination is algebra, so the only
//! divergence from the monolithic oracle is floating-point routing
//! (documented as `PART_REL_TOL`). A block covering a *whole* component
//! has no boundary at all; it stores the component's `L⁺` directly and
//! the correction term vanishes — the components-mode exactness
//! guarantee.
//!
//! Cross-component pairs need `diag(L⁺)`; those entries are recovered
//! through the same identity with `b = e_v − 1_C / n_C` (mean-zero by
//! construction, and the zero row sums of `L⁺` make the extra terms
//! vanish), computed once at build time when the graph is disconnected.

use crate::partitioner::Partition;
use cad_commute::Result;
use cad_graph::{GraphError, WeightedGraph};
use cad_linalg::dense::CholeskyFactor;
use cad_linalg::pinv::{laplacian_pinv_cholesky, sym_pinv};
use cad_linalg::DenseMatrix;

/// Relative eigenvalue cutoff for pseudoinverses (matches the exact
/// engine's fallback cutoff).
const PINV_CUTOFF: f64 = 1e-9;

/// Where a vertex lives in the block layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Loc {
    /// Interior of block `block`, local row `pos`.
    Interior { block: u32, pos: u32 },
    /// Boundary vertex, row `pos` of the interface system.
    Boundary { pos: u32 },
}

/// One block's solve state.
#[derive(Debug, Clone)]
pub(crate) struct Block {
    /// Member vertices (global ids, ascending): the block's interior,
    /// or the entire component for a whole-component block.
    pub(crate) nodes: Vec<u32>,
    /// `true` when the block covers a whole component (then `m` is the
    /// component's `L⁺` and `w` is empty).
    pub(crate) whole: bool,
    /// `L_{I_k I_k}⁻¹` (split) or the component `L⁺` (whole).
    pub(crate) m: DenseMatrix,
    /// `W_k = M_k · L_{I_k S}`, `|I_k| × |S|` (zero-row when whole).
    pub(crate) w: DenseMatrix,
}

/// The assembled block-partitioned exact solve state.
#[derive(Debug, Clone)]
pub(crate) struct ExactBlocks {
    pub(crate) n: usize,
    pub(crate) comp_of: Vec<u32>,
    pub(crate) comp_size: Vec<usize>,
    pub(crate) blocks: Vec<Block>,
    pub(crate) loc: Vec<Loc>,
    /// Boundary vertices, ascending global ids.
    pub(crate) sep: Vec<u32>,
    /// `S_c⁺` (`0 × 0` when there is no boundary).
    pub(crate) s_pinv: DenseMatrix,
    /// `diag(L⁺)` for cross-component queries; `None` on connected
    /// graphs (no cross-component pair exists).
    pub(crate) diag: Option<Vec<f64>>,
}

/// `xᵀ A x` for symmetric `A`, skipping zero entries of `x`.
fn quad(a: &DenseMatrix, x: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        let row = a.row(i);
        let mut s = 0.0;
        for (aij, xj) in row.iter().zip(x) {
            s += aij * xj;
        }
        acc += xi * s;
    }
    acc
}

/// Stable label value for the `part_block_solve_secs{block=…}` family.
pub(crate) fn block_label(k: usize) -> &'static str {
    match k {
        0 => "0",
        1 => "1",
        2 => "2",
        3 => "3",
        4 => "4",
        5 => "5",
        6 => "6",
        7 => "7",
        _ => "other",
    }
}

impl ExactBlocks {
    /// Factor every block and the interface system for `g` under
    /// `part`. Per-block factorizations are independent work units
    /// fanned out over `cad_linalg::par` (index-order merge, so the
    /// result is bit-identical for any thread count).
    pub(crate) fn build(g: &WeightedGraph, part: &Partition, threads: usize) -> Result<Self> {
        let n = g.n_nodes();
        let sep: Vec<u32> = (0..n as u32)
            .filter(|&v| part.boundary[v as usize])
            .collect();
        let ns = sep.len();
        let mut spos = vec![u32::MAX; n];
        for (q, &v) in sep.iter().enumerate() {
            spos[v as usize] = q as u32;
        }

        // A component is split exactly when it owns boundary vertices.
        let mut comp_split = vec![false; part.n_components];
        for &v in &sep {
            comp_split[part.component_of[v as usize] as usize] = true;
        }

        // Interior membership per block, ascending global ids.
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); part.n_blocks];
        for v in 0..n {
            if !part.boundary[v] {
                members[part.block_of[v] as usize].push(v as u32);
            }
        }

        let mut loc = vec![Loc::Boundary { pos: 0 }; n];
        for (q, &v) in sep.iter().enumerate() {
            loc[v as usize] = Loc::Boundary { pos: q as u32 };
        }
        for (k, nodes) in members.iter().enumerate() {
            for (p, &v) in nodes.iter().enumerate() {
                loc[v as usize] = Loc::Interior {
                    block: k as u32,
                    pos: p as u32,
                };
            }
        }

        // One work unit per block: assemble the local reduced Laplacian
        // and factor it. Whole-component blocks take the pseudoinverse
        // route; split interiors are SPD and take plain Cholesky.
        let build_block = |k: usize, nodes: &Vec<u32>| -> Result<(Block, DenseMatrix)> {
            let start = std::time::Instant::now();
            let ni = nodes.len();
            let whole = ni > 0 && !comp_split[part.component_of[nodes[0] as usize] as usize];
            let mut local = vec![u32::MAX; n];
            for (p, &v) in nodes.iter().enumerate() {
                local[v as usize] = p as u32;
            }
            let mut l_ii = DenseMatrix::zeros(ni, ni);
            let mut l_is = DenseMatrix::zeros(ni, ns);
            for (p, &v) in nodes.iter().enumerate() {
                l_ii.set(p, p, g.degree(v as usize));
                for (u, wt) in g.neighbors(v as usize) {
                    if part.boundary[u] {
                        l_is.add_to(p, spos[u] as usize, -wt);
                    } else {
                        debug_assert_ne!(local[u], u32::MAX, "interior neighbor outside block");
                        l_ii.add_to(p, local[u] as usize, -wt);
                    }
                }
            }
            let (m, w) = if ni == 0 {
                (DenseMatrix::zeros(0, 0), DenseMatrix::zeros(0, ns))
            } else if whole {
                let m = laplacian_pinv_cholesky(&l_ii)
                    .or_else(|_| sym_pinv(&l_ii, PINV_CUTOFF))
                    .map_err(GraphError::from)?;
                (m, DenseMatrix::zeros(0, ns))
            } else {
                let m = CholeskyFactor::factor(&l_ii)
                    .and_then(|f| f.inverse())
                    .map_err(GraphError::from)?;
                let w = m.matmul(&l_is).map_err(GraphError::from)?;
                (m, w)
            };
            let secs = start.elapsed().as_secs_f64();
            cad_obs::counters::PART_BLOCK_SOLVES.inc();
            cad_obs::histograms::labeled::PART_BLOCK_SOLVE_SECS.observe(block_label(k), secs);
            cad_obs::events::record(
                cad_obs::events::EventKind::SpanClose,
                "part_block_solve",
                secs,
                k as u64,
            );
            Ok((
                Block {
                    nodes: nodes.clone(),
                    whole,
                    m,
                    w,
                },
                l_is,
            ))
        };
        let built: Vec<(Block, DenseMatrix)> =
            cad_linalg::par::par_map_result(&members, threads.max(1), build_block)?;

        // Interface system: S_c = L_SS − Σ_k L_SI(k) W(k).
        let s_pinv = if ns == 0 {
            DenseMatrix::zeros(0, 0)
        } else {
            let mut s_c = DenseMatrix::zeros(ns, ns);
            for (q, &v) in sep.iter().enumerate() {
                s_c.set(q, q, g.degree(v as usize));
                for (u, wt) in g.neighbors(v as usize) {
                    if part.boundary[u] {
                        s_c.add_to(q, spos[u] as usize, -wt);
                    }
                }
            }
            for (block, l_is) in &built {
                if block.whole || block.nodes.is_empty() {
                    continue;
                }
                // L_SI W = l_isᵀ · w, subtracted entry-wise.
                let corr = l_is
                    .transpose()
                    .matmul(&block.w)
                    .map_err(GraphError::from)?;
                for q in 0..ns {
                    for r in 0..ns {
                        s_c.add_to(q, r, -corr.get(q, r));
                    }
                }
            }
            sym_pinv(&s_c, PINV_CUTOFF).map_err(GraphError::from)?
        };

        let blocks: Vec<Block> = built.into_iter().map(|(b, _)| b).collect();
        let mut comp_size = vec![0usize; part.n_components];
        for v in 0..n {
            comp_size[part.component_of[v] as usize] += 1;
        }

        let mut out = ExactBlocks {
            n,
            comp_of: part.component_of.clone(),
            comp_size,
            blocks,
            loc,
            sep,
            s_pinv,
            diag: None,
        };
        if part.n_components > 1 {
            out.diag = Some(out.compute_diag());
        }
        Ok(out)
    }

    /// `diag(L⁺)` via `p_vv = bᵀ L⁺ b` with `b = e_v − 1_C / n_C`.
    #[allow(clippy::needless_range_loop)] // v also indexes loc/comp_of
    fn compute_diag(&self) -> Vec<f64> {
        let ns = self.sep.len();
        let n_comp = self.comp_size.len();
        // Per-block row sums of M and W, and their per-component totals.
        let mut msum: Vec<Vec<f64>> = Vec::with_capacity(self.blocks.len());
        let mut sigma_c = vec![0.0; n_comp];
        let mut wsum_c = vec![vec![0.0; ns]; n_comp];
        for block in &self.blocks {
            let ni = block.nodes.len();
            let mut ms = vec![0.0; ni];
            for (p, slot) in ms.iter_mut().enumerate() {
                *slot = block.m.row(p).iter().sum();
            }
            if ni > 0 {
                let c = self.comp_of[block.nodes[0] as usize] as usize;
                sigma_c[c] += ms.iter().sum::<f64>();
                if !block.whole {
                    for p in 0..ni {
                        for (q, acc) in wsum_c[c].iter_mut().enumerate() {
                            *acc += block.w.get(p, q);
                        }
                    }
                }
            }
            msum.push(ms);
        }

        let mut diag = vec![0.0; self.n];
        let mut rhs = vec![0.0; ns];
        for v in 0..self.n {
            let c = self.comp_of[v] as usize;
            let nc = self.comp_size[c] as f64;
            match self.loc[v] {
                Loc::Interior { block, pos } => {
                    let b = &self.blocks[block as usize];
                    let (p, k) = (pos as usize, block as usize);
                    if b.whole {
                        // The block's M *is* the component L⁺.
                        diag[v] = b.m.get(p, p);
                        continue;
                    }
                    let mterm = b.m.get(p, p) - (2.0 / nc) * msum[k][p] + sigma_c[c] / (nc * nc);
                    for (q, slot) in rhs.iter_mut().enumerate() {
                        let in_c = self.comp_of[self.sep[q] as usize] as usize == c;
                        *slot =
                            if in_c { -1.0 / nc } else { 0.0 } + wsum_c[c][q] / nc - b.w.get(p, q);
                    }
                    diag[v] = (mterm + quad(&self.s_pinv, &rhs)).max(0.0);
                }
                Loc::Boundary { pos } => {
                    let mterm = sigma_c[c] / (nc * nc);
                    for (q, slot) in rhs.iter_mut().enumerate() {
                        let in_c = self.comp_of[self.sep[q] as usize] as usize == c;
                        *slot = if q == pos as usize { 1.0 } else { 0.0 }
                            + if in_c { -1.0 / nc } else { 0.0 }
                            + wsum_c[c][q] / nc;
                    }
                    diag[v] = (mterm + quad(&self.s_pinv, &rhs)).max(0.0);
                }
            }
        }
        diag
    }

    /// Effective resistance `r_eff(i, j)`, stitched across the
    /// interface. Cross-component pairs use the pseudoinverse extension
    /// `l⁺_ii + l⁺_jj`, matching the monolithic exact oracle.
    pub(crate) fn resistance(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        if self.comp_of[i] != self.comp_of[j] {
            let d = self
                .diag
                .as_ref()
                .expect("diag is built whenever the graph is disconnected");
            return (d[i] + d[j]).max(0.0);
        }
        let mut mterm = 0.0;
        let (li, lj) = (self.loc[i], self.loc[j]);
        if let (Loc::Interior { block: bi, pos: pi }, Loc::Interior { block: bj, pos: pj }) =
            (li, lj)
        {
            let (pi, pj) = (pi as usize, pj as usize);
            mterm += self.blocks[bi as usize].m.get(pi, pi);
            mterm += self.blocks[bj as usize].m.get(pj, pj);
            if bi == bj {
                mterm -= 2.0 * self.blocks[bi as usize].m.get(pi, pj);
            }
        } else {
            for l in [li, lj] {
                if let Loc::Interior { block, pos } = l {
                    let p = pos as usize;
                    mterm += self.blocks[block as usize].m.get(p, p);
                }
            }
        }
        let ns = self.sep.len();
        if ns == 0 {
            return mterm.max(0.0);
        }
        // rhs = b_S − Wᵀ b_I for b = e_i − e_j.
        let mut rhs = vec![0.0; ns];
        for (l, sign) in [(li, 1.0), (lj, -1.0)] {
            match l {
                Loc::Boundary { pos } => rhs[pos as usize] += sign,
                Loc::Interior { block, pos } => {
                    let b = &self.blocks[block as usize];
                    if !b.whole {
                        for (q, slot) in rhs.iter_mut().enumerate() {
                            *slot -= sign * b.w.get(pos as usize, q);
                        }
                    }
                }
            }
        }
        (mterm + quad(&self.s_pinv, &rhs)).max(0.0)
    }

    /// Solve `L x = y` for a right-hand side that is mean-zero per
    /// component, returning the mean-zero-per-component solution (what
    /// the monolithic CG solver converges to). Backs the partitioned
    /// embedding build.
    pub(crate) fn solve_mean_zero(&self, y: &[f64]) -> Result<Vec<f64>> {
        let ns = self.sep.len();
        let mut x = vec![0.0; self.n];
        // Gather per-block interior slices and u_k = M_k y_I(k).
        let mut rhs_s = vec![0.0; ns];
        for (q, &v) in self.sep.iter().enumerate() {
            rhs_s[q] = y[v as usize];
        }
        let mut us: Vec<Vec<f64>> = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            let yi: Vec<f64> = block.nodes.iter().map(|&v| y[v as usize]).collect();
            let u = block.m.matvec(&yi).map_err(GraphError::from)?;
            if !block.whole {
                for (p, &yp) in yi.iter().enumerate() {
                    if yp == 0.0 {
                        continue;
                    }
                    for (q, slot) in rhs_s.iter_mut().enumerate() {
                        *slot -= yp * block.w.get(p, q);
                    }
                }
            }
            us.push(u);
        }
        let x_s = if ns == 0 {
            Vec::new()
        } else {
            self.s_pinv.matvec(&rhs_s).map_err(GraphError::from)?
        };
        for (q, &v) in self.sep.iter().enumerate() {
            x[v as usize] = x_s[q];
        }
        for (block, u) in self.blocks.iter().zip(us) {
            if block.whole || ns == 0 {
                for (&v, xv) in block.nodes.iter().zip(u) {
                    x[v as usize] = xv;
                }
            } else {
                let wx = block.w.matvec(&x_s).map_err(GraphError::from)?;
                for ((&v, xv), corr) in block.nodes.iter().zip(u).zip(wx) {
                    x[v as usize] = xv - corr;
                }
            }
        }
        // Normalize to mean-zero per component (the min-norm solution).
        let n_comp = self.comp_size.len();
        let mut mean = vec![0.0; n_comp];
        for (v, &xv) in x.iter().enumerate() {
            mean[self.comp_of[v] as usize] += xv;
        }
        for (c, m) in mean.iter_mut().enumerate() {
            *m /= self.comp_size[c] as f64;
        }
        for (v, xv) in x.iter_mut().enumerate() {
            *xv -= mean[self.comp_of[v] as usize];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::partition;
    use cad_commute::{ExactCommute, PartitionMode, PartitionSpec};

    fn check_against_exact(g: &WeightedGraph, spec: PartitionSpec, tol: f64) {
        let part = partition(g, spec).unwrap();
        let blocks = ExactBlocks::build(g, &part, 1).unwrap();
        let exact = ExactCommute::compute(g).unwrap();
        for i in 0..g.n_nodes() {
            for j in 0..g.n_nodes() {
                let (a, b) = (blocks.resistance(i, j), exact.resistance(i, j));
                assert!(
                    (a - b).abs() <= tol * (1.0 + b),
                    "r({i},{j}): partitioned {a} vs exact {b} ({:?})",
                    part.mode
                );
            }
        }
    }

    fn ring_of_clusters() -> WeightedGraph {
        // Three 4-cliques joined in a ring by single edges — a connected
        // graph with a natural small cut.
        let mut edges = Vec::new();
        for c in 0..3usize {
            let base = 4 * c;
            for a in 0..4 {
                for b in (a + 1)..4 {
                    edges.push((base + a, base + b, 1.0 + 0.1 * (a + b) as f64));
                }
            }
        }
        edges.push((3, 4, 0.5));
        edges.push((7, 8, 0.7));
        edges.push((11, 0, 0.9));
        WeightedGraph::from_edges(12, &edges).unwrap()
    }

    #[test]
    fn bfs_split_matches_exact_on_connected_graph() {
        let g = ring_of_clusters();
        for blocks in [2, 3, 5] {
            check_against_exact(
                &g,
                PartitionSpec {
                    blocks,
                    mode: PartitionMode::Bfs,
                },
                1e-8,
            );
        }
    }

    #[test]
    fn components_mode_matches_exact_on_disconnected_graph() {
        let g = WeightedGraph::from_edges(
            9,
            &[
                (0, 1, 1.0),
                (1, 2, 2.0),
                (0, 2, 0.5),
                (3, 4, 1.0),
                (4, 5, 1.5),
                (6, 7, 1.0),
                (7, 8, 1.0),
                (6, 8, 2.0),
            ],
        )
        .unwrap();
        check_against_exact(
            &g,
            PartitionSpec {
                blocks: 3,
                mode: PartitionMode::Components,
            },
            1e-8,
        );
    }

    #[test]
    fn bfs_split_of_disconnected_graph_matches_exact() {
        // Components split further than component count: cross-component
        // queries exercise the diag path alongside interface stitching.
        let mut edges = Vec::new();
        for i in 0..7usize {
            edges.push((i, i + 1, 1.0 + 0.05 * i as f64));
        }
        for i in 8..13usize {
            edges.push((i, i + 1, 0.8));
        }
        edges.push((8, 13, 0.3));
        let g = WeightedGraph::from_edges(14, &edges).unwrap();
        check_against_exact(
            &g,
            PartitionSpec {
                blocks: 4,
                mode: PartitionMode::Bfs,
            },
            1e-8,
        );
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let g = ring_of_clusters();
        let part = partition(
            &g,
            PartitionSpec {
                blocks: 3,
                mode: PartitionMode::Bfs,
            },
        )
        .unwrap();
        let seq = ExactBlocks::build(&g, &part, 1).unwrap();
        let par = ExactBlocks::build(&g, &part, 4).unwrap();
        for i in 0..12 {
            for j in 0..12 {
                assert_eq!(
                    seq.resistance(i, j).to_bits(),
                    par.resistance(i, j).to_bits(),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn solve_mean_zero_matches_direct_pinv_apply() {
        let g = ring_of_clusters();
        let part = partition(
            &g,
            PartitionSpec {
                blocks: 3,
                mode: PartitionMode::Bfs,
            },
        )
        .unwrap();
        let blocks = ExactBlocks::build(&g, &part, 1).unwrap();
        let exact = ExactCommute::compute(&g).unwrap();
        // A mean-zero RHS (edge-incidence style).
        let mut y = vec![0.0; 12];
        y[1] = 1.3;
        y[9] = -1.3;
        let x = blocks.solve_mean_zero(&y).unwrap();
        // Compare against L⁺ y via resistances: xᵀ y should equal yᵀ L⁺ y.
        let want = {
            // yᵀL⁺y for y = 1.3 (e1 − e9) is 1.69 · r_eff(1, 9).
            1.69 * exact.resistance(1, 9)
        };
        let got: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((got - want).abs() <= 1e-8 * (1.0 + want), "{got} vs {want}");
        // Mean-zero per component (single component here).
        assert!(x.iter().sum::<f64>().abs() < 1e-9);
    }
}
