//! [`PartitionedOracle`] — a [`DistanceOracle`] whose solves run
//! block-by-block as independent work units.

use crate::blocks::ExactBlocks;
use crate::partitioner::{partition, Partition};
use cad_commute::{
    CommuteTimeEngine, DistanceOracle, EngineOptions, OracleKind, PartitionInfo, PartitionSpec,
    Result, SharedOracle,
};
use cad_graph::WeightedGraph;
use cad_linalg::rp::RademacherSource;

/// The partitioned solve state behind a [`PartitionedOracle`].
#[derive(Debug, Clone)]
pub(crate) enum Inner {
    /// Exact per-block `L⁺` pieces plus the interface solve.
    Exact(ExactBlocks),
    /// JL-sketched coordinates (row-major `n × k`), solved through the
    /// block machinery at build time; the block structures are dropped
    /// once the sketch is in hand.
    Embedding { coords: Vec<f64>, k: usize },
}

/// A block-partitioned commute-time oracle.
///
/// Same query semantics as the monolithic exact/embedding oracles —
/// `distance` is the commute distance `V_G · r_eff` — but every
/// per-block factorization is an independent work unit fanned out over
/// `cad_linalg::par` (index-order merge, so results are bit-identical
/// for any thread count). Divergence from the *unpartitioned* oracle is
/// bounded by [`crate::PART_REL_TOL`], and is exactly zero when every
/// block is a whole connected component (components mode).
#[derive(Debug, Clone)]
pub struct PartitionedOracle {
    pub(crate) n: usize,
    pub(crate) volume: f64,
    pub(crate) info: PartitionInfo,
    pub(crate) inner: Inner,
    pub(crate) build_stats: cad_obs::OracleBuildStats,
}

impl PartitionedOracle {
    /// Build a partitioned oracle for `g`.
    ///
    /// The engine choice mirrors [`CommuteTimeEngine`]: `Exact` and the
    /// small side of `Auto` take the per-block Schur route, `Approximate`
    /// and the large side of `Auto` sketch through the block solver. The
    /// ablation engines (`ShortestPath`, `Corrected`) have no block
    /// formulation — those requests fall back to the monolithic build
    /// (the returned oracle then reports no partition info).
    pub fn build(
        g: &WeightedGraph,
        opts: &EngineOptions,
        spec: PartitionSpec,
        threads: usize,
    ) -> Result<SharedOracle> {
        enum Route {
            Exact,
            Embedding(cad_commute::EmbeddingOptions),
        }
        let route = match opts {
            EngineOptions::Exact => Route::Exact,
            EngineOptions::Approximate(e) => Route::Embedding(*e),
            EngineOptions::Auto {
                threshold,
                embedding,
            } => {
                if g.n_nodes() <= *threshold {
                    Route::Exact
                } else {
                    Route::Embedding(*embedding)
                }
            }
            EngineOptions::ShortestPath | EngineOptions::Corrected => {
                return CommuteTimeEngine::compute(g, opts);
            }
        };

        let _span = cad_obs::span!("oracle_build");
        cad_obs::counters::ORACLE_BUILDS.inc();
        let (oracle, secs) = cad_obs::time_it(|| -> Result<PartitionedOracle> {
            let build_start = std::time::Instant::now();
            let part = partition(g, spec)?;
            cad_obs::counters::PART_BLOCKS.add(part.n_blocks as u64);
            cad_obs::counters::PART_BOUNDARY_EDGES.add(part.cut_edges as u64);
            let info = PartitionInfo {
                blocks: part.n_blocks,
                boundary_edges: part.cut_edges,
            };
            let blocks = ExactBlocks::build(g, &part, threads)?;
            let (inner, backend) = match route {
                Route::Exact => (Inner::Exact(blocks), "partitioned-exact"),
                Route::Embedding(e) => (
                    Self::sketch(g, &blocks, &e, threads)?,
                    "partitioned-embedding",
                ),
            };
            let jl_dim = match &inner {
                Inner::Embedding { k, .. } => Some(*k),
                Inner::Exact(_) => None,
            };
            Ok(PartitionedOracle {
                n: g.n_nodes(),
                volume: g.volume(),
                info,
                inner,
                build_stats: cad_obs::OracleBuildStats {
                    backend,
                    build_secs: build_start.elapsed().as_secs_f64(),
                    jl_dim,
                    solves: Vec::new(),
                },
            })
        });
        cad_obs::histograms::ORACLE_BUILD_SECS.observe(secs);
        oracle.map(|o| Box::new(o) as SharedOracle)
    }

    /// The same JL sketch as `CommuteEmbedding::compute` — identical
    /// seed, sign stream and scaling — with each row's Laplacian solve
    /// routed through the block machinery instead of monolithic CG.
    fn sketch(
        g: &WeightedGraph,
        blocks: &ExactBlocks,
        e: &cad_commute::EmbeddingOptions,
        threads: usize,
    ) -> Result<Inner> {
        if e.k == 0 {
            return Err(cad_graph::GraphError::InvalidInput(
                "embedding dimension k must be > 0".into(),
            ));
        }
        let n = g.n_nodes();
        let signs = RademacherSource::new(e.seed);
        let inv_sqrt_k = 1.0 / (e.k as f64).sqrt();
        let solve_row = |row: usize| -> Result<Vec<f64>> {
            cad_obs::counters::JL_PROJECTIONS.inc();
            let mut y = vec![0.0; n];
            for (e_idx, (u, v, w)) in g.edges().enumerate() {
                let q = signs.sign(row as u64, e_idx as u64) * inv_sqrt_k;
                let s = q * w.sqrt();
                y[u] += s;
                y[v] -= s;
            }
            blocks.solve_mean_zero(&y)
        };
        let rows: Vec<Vec<f64>> =
            cad_linalg::par::par_tabulate_result(e.k, threads.max(1), solve_row)?;
        let mut coords = vec![0.0; n * e.k];
        for (row, x) in rows.into_iter().enumerate() {
            for (i, xi) in x.into_iter().enumerate() {
                coords[i * e.k + row] = xi;
            }
        }
        Ok(Inner::Embedding { coords, k: e.k })
    }

    /// Effective resistance (exact: stitched block solve; embedding:
    /// sketch distance).
    pub fn resistance(&self, i: usize, j: usize) -> f64 {
        match &self.inner {
            Inner::Exact(b) => b.resistance(i, j),
            Inner::Embedding { coords, k } => {
                if i == j {
                    0.0
                } else {
                    cad_linalg::vecops::dist2_sq(
                        &coords[i * k..(i + 1) * k],
                        &coords[j * k..(j + 1) * k],
                    )
                }
            }
        }
    }

    /// Realised block layout facts.
    pub fn info(&self) -> PartitionInfo {
        self.info
    }
}

impl DistanceOracle for PartitionedOracle {
    fn n_nodes(&self) -> usize {
        self.n
    }

    fn distance(&self, i: usize, j: usize) -> f64 {
        self.volume * self.resistance(i, j)
    }

    fn kind(&self) -> OracleKind {
        match self.inner {
            Inner::Exact(_) => OracleKind::Exact,
            Inner::Embedding { .. } => OracleKind::Embedding,
        }
    }

    fn volume(&self) -> Option<f64> {
        Some(self.volume)
    }

    fn resistance(&self, i: usize, j: usize) -> f64 {
        PartitionedOracle::resistance(self, i, j)
    }

    fn build_stats(&self) -> Option<&cad_obs::OracleBuildStats> {
        Some(&self.build_stats)
    }

    fn to_store_bytes(&self) -> Vec<u8> {
        crate::persist::to_bytes(self)
    }

    fn clone_box(&self) -> SharedOracle {
        Box::new(self.clone())
    }

    fn partition_info(&self) -> Option<PartitionInfo> {
        Some(self.info)
    }
}

/// Re-borrow of [`Partition`] so downstream crates can inspect layouts
/// without the solve state.
pub fn layout(g: &WeightedGraph, spec: PartitionSpec) -> Result<Partition> {
    partition(g, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cad_commute::{EmbeddingOptions, ExactCommute, PartitionMode};

    fn bridged(n_half: usize) -> WeightedGraph {
        // Two cliques joined by one edge: a connected graph with a cut.
        let mut edges = Vec::new();
        for base in [0, n_half] {
            for a in 0..n_half {
                for b in (a + 1)..n_half {
                    edges.push((base + a, base + b, 1.0));
                }
            }
        }
        edges.push((n_half - 1, n_half, 0.25));
        WeightedGraph::from_edges(2 * n_half, &edges).unwrap()
    }

    #[test]
    fn exact_partitioned_matches_monolithic() {
        let g = bridged(5);
        let spec = PartitionSpec {
            blocks: 2,
            mode: PartitionMode::Bfs,
        };
        let o = PartitionedOracle::build(&g, &EngineOptions::Exact, spec, 1).unwrap();
        assert_eq!(o.kind(), OracleKind::Exact);
        assert!(o.is_exact());
        let info = o.partition_info().unwrap();
        assert_eq!(info.blocks, 2);
        assert!(info.boundary_edges > 0);
        let mono = ExactCommute::compute(&g).unwrap();
        for i in 0..10 {
            for j in 0..10 {
                let (a, b) = (o.distance(i, j), mono.commute_distance(i, j));
                assert!(
                    (a - b).abs() <= crate::PART_REL_TOL * (1.0 + b),
                    "c({i},{j}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn embedding_partitioned_tracks_monolithic_embedding() {
        let g = bridged(4);
        let e = EmbeddingOptions {
            k: 64,
            ..Default::default()
        };
        let spec = PartitionSpec {
            blocks: 2,
            mode: PartitionMode::Bfs,
        };
        let o = PartitionedOracle::build(&g, &EngineOptions::Approximate(e), spec, 1).unwrap();
        assert_eq!(o.kind(), OracleKind::Embedding);
        let mono = cad_commute::CommuteEmbedding::compute(&g, &e).unwrap();
        // Same sketch, direct instead of CG solves: agreement is limited
        // only by the CG tolerance, far inside PART_REL_TOL.
        for i in 0..8 {
            for j in 0..8 {
                let (a, b) = (o.commute_distance(i, j), mono.commute_distance(i, j));
                assert!(
                    (a - b).abs() <= crate::PART_REL_TOL * (1.0 + b),
                    "c({i},{j}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn ablation_engines_fall_back_to_monolithic() {
        let g = bridged(3);
        let spec = PartitionSpec::auto(2);
        let o = PartitionedOracle::build(&g, &EngineOptions::ShortestPath, spec, 1).unwrap();
        assert_eq!(o.kind(), OracleKind::ShortestPath);
        assert!(o.partition_info().is_none(), "fallback is unpartitioned");
        let c = PartitionedOracle::build(&g, &EngineOptions::Corrected, spec, 1).unwrap();
        assert_eq!(c.kind(), OracleKind::Corrected);
        assert!(c.partition_info().is_none());
    }

    #[test]
    fn auto_routes_by_threshold() {
        let g = bridged(4);
        let opts = |threshold| EngineOptions::Auto {
            threshold,
            embedding: EmbeddingOptions {
                k: 8,
                ..Default::default()
            },
        };
        let spec = PartitionSpec::auto(2);
        let small = PartitionedOracle::build(&g, &opts(8), spec, 1).unwrap();
        assert_eq!(small.kind(), OracleKind::Exact);
        let large = PartitionedOracle::build(&g, &opts(7), spec, 1).unwrap();
        assert_eq!(large.kind(), OracleKind::Embedding);
    }

    #[test]
    fn components_mode_is_bit_exact_per_component() {
        let g = WeightedGraph::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 2.0),
                (0, 2, 0.5),
                (3, 4, 1.0),
                (4, 5, 3.0),
            ],
        )
        .unwrap();
        let spec = PartitionSpec {
            blocks: 2,
            mode: PartitionMode::Components,
        };
        let o = PartitionedOracle::build(&g, &EngineOptions::Exact, spec, 1).unwrap();
        let info = o.partition_info().unwrap();
        assert_eq!(info.boundary_edges, 0);
        let mono = ExactCommute::compute(&g).unwrap();
        // No interface at all: the only arithmetic difference vs the
        // monolithic build is pinv on the component instead of the whole
        // matrix — both land on the same Cholesky route per component.
        for i in 0..6 {
            for j in 0..6 {
                let (a, b) = (o.distance(i, j), mono.commute_distance(i, j));
                assert!((a - b).abs() <= 1e-9 * (1.0 + b), "c({i},{j}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn counters_track_layout() {
        let before_blocks = cad_obs::counters::PART_BLOCKS.get();
        let before_solves = cad_obs::counters::PART_BLOCK_SOLVES.get();
        let g = bridged(4);
        let spec = PartitionSpec {
            blocks: 2,
            mode: PartitionMode::Bfs,
        };
        let _o = PartitionedOracle::build(&g, &EngineOptions::Exact, spec, 1).unwrap();
        assert_eq!(cad_obs::counters::PART_BLOCKS.get(), before_blocks + 2);
        assert_eq!(
            cad_obs::counters::PART_BLOCK_SOLVES.get(),
            before_solves + 2
        );
    }
}
