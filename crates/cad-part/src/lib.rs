//! Block-partitioned detection: split the graph into blocks, solve each
//! block independently, stitch distances through a boundary interface
//! solve.
//!
//! The paper's detector only ever needs commute distances; computing
//! them monolithically means one dense `n × n` pseudoinverse. This
//! crate decomposes that work along a graph partition (DESIGN.md §14):
//!
//! 1. [`partitioner`] lays out blocks — connected components first
//!    (blocks are then *exact*), else a greedy BFS balanced splitter
//!    with a reported edge cut.
//! 2. [`blocks`] builds each block's reduced Laplacian factorization as
//!    an independent work unit over `cad_linalg::par`, plus one coarse
//!    Schur-complement solve on the boundary vertices.
//! 3. [`PartitionedOracle`] answers `DistanceOracle` queries by
//!    combining a per-block term with the interface correction.
//!
//! Accuracy contract: partitioned results are *algebraically* equal to
//! the monolithic oracle (block elimination is exact), so the only
//! divergence is floating-point routing, bounded by [`PART_REL_TOL`].
//! When every block is a whole connected component the interface is
//! empty and components-mode results are exact. Determinism holds for
//! any thread count: per-block work merges in index order.

pub mod blocks;
pub mod oracle;
pub mod partitioner;
pub mod persist;

pub use oracle::PartitionedOracle;
pub use partitioner::{partition, Partition};
pub use persist::decode_oracle;

// Re-export the spec/layout types that live in `cad-commute` (they sit
// there so `CadOptions` and the `OracleProvider` seam can name them
// without depending on this crate).
pub use cad_commute::{PartitionInfo, PartitionMode, PartitionSpec};

/// Relative tolerance between a partitioned oracle and the monolithic
/// oracle it decomposes, measured as `|part − mono| ≤ PART_REL_TOL ·
/// (1 + |mono|)` per distance query.
///
/// The Schur elimination behind the partitioned solve is exact algebra;
/// the tolerance only absorbs floating-point differences between the
/// two computation orders (per-block Cholesky + interface pseudoinverse
/// vs one global factorization, and direct block solves vs CG for the
/// embedding engine's sketch rows). Exactly zero divergence when blocks
/// are whole connected components (empty interface).
pub const PART_REL_TOL: f64 = 1e-6;
