//! The quantitative evaluation loop of §4.1 (Figures 5–6).
//!
//! Runs a set of [`NodeScorer`]s over Monte-Carlo realizations of the
//! GMM benchmark, scoring the single `A_1 → A_2` transition against the
//! planted node labels.

use cad_core::NodeScorer;
use cad_datasets::{GmmBenchmark, GmmBenchmarkOptions};
use cad_eval::{auc, average_roc, roc_curve, RocCurve};

/// Aggregated evaluation of one method over the trials.
#[derive(Debug, Clone)]
pub struct MethodEval {
    /// Method name ("CAD", "ACT", …).
    pub name: String,
    /// AUC per trial.
    pub aucs: Vec<f64>,
    /// ROC averaged over trials on a 100-point FPR grid.
    pub mean_roc: RocCurve,
}

impl MethodEval {
    /// Mean AUC over the trials.
    pub fn mean_auc(&self) -> f64 {
        self.aucs.iter().sum::<f64>() / self.aucs.len() as f64
    }
}

/// Evaluate `methods` over `trials` GMM realizations (seeds
/// `base.seed + trial`).
pub fn evaluate_on_gmm(
    base: &GmmBenchmarkOptions,
    trials: usize,
    methods: &[&dyn NodeScorer],
) -> cad_datasets::Result<Vec<MethodEval>> {
    assert!(trials > 0, "need at least one trial");
    let mut aucs: Vec<Vec<f64>> = vec![Vec::with_capacity(trials); methods.len()];
    let mut curves: Vec<Vec<RocCurve>> = vec![Vec::with_capacity(trials); methods.len()];
    for trial in 0..trials {
        let mut opts = base.clone();
        opts.seed = base.seed.wrapping_add(trial as u64);
        let bench = GmmBenchmark::generate(&opts)?;
        for (mi, method) in methods.iter().enumerate() {
            let scores = method.node_scores(&bench.seq)?;
            aucs[mi].push(auc(&scores[0], &bench.node_labels));
            curves[mi].push(roc_curve(&scores[0], &bench.node_labels));
        }
    }
    Ok(methods
        .iter()
        .zip(aucs)
        .zip(curves)
        .map(|((m, a), c)| MethodEval {
            name: m.name().to_string(),
            aucs: a,
            mean_roc: average_roc(&c, 100),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cad_core::CadDetector;

    #[test]
    fn single_trial_single_method() {
        let opts = GmmBenchmarkOptions::with_n(80);
        let det = CadDetector::default();
        let evals = evaluate_on_gmm(&opts, 1, &[&det]).unwrap();
        assert_eq!(evals.len(), 1);
        assert_eq!(evals[0].name, "CAD");
        assert_eq!(evals[0].aucs.len(), 1);
        let a = evals[0].mean_auc();
        assert!((0.0..=1.0).contains(&a));
    }
}
