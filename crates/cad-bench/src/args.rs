//! Minimal `--flag value` command-line parsing for experiment binaries.
//!
//! Not a general argument parser: experiment binaries take a handful of
//! numeric knobs (`--n 2000 --trials 100 --seed 7`) and nothing else, so
//! a dependency-free two-token scanner is all that's needed.

use std::collections::HashMap;

/// Parsed `--key value` pairs plus bare `--switch` flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parse from `std::env::args` (skipping the program name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse from an explicit token stream (used by tests).
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Self {
        let mut values = HashMap::new();
        let mut switches = Vec::new();
        let mut iter = tokens.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        values.insert(key.to_string(), iter.next().expect("peeked"));
                    }
                    _ => switches.push(key.to_string()),
                }
            }
        }
        Args { values, switches }
    }

    /// Numeric flag with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether a bare `--switch` was passed.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key) || self.values.contains_key(key)
    }

    /// Route `--quiet` / `--verbose` to the cad-obs progress sink so
    /// every experiment binary honours them uniformly.
    pub fn apply_verbosity(&self) {
        if self.has("quiet") {
            cad_obs::set_verbosity(cad_obs::Verbosity::Quiet);
        } else if self.has("verbose") {
            cad_obs::set_verbosity(cad_obs::Verbosity::Debug);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_key_values() {
        let a = args("--n 2000 --trials 100 --seed 7");
        assert_eq!(a.get("n", 0usize), 2000);
        assert_eq!(a.get("trials", 0usize), 100);
        assert_eq!(a.get("seed", 0u64), 7);
    }

    #[test]
    fn defaults_when_missing_or_invalid() {
        let a = args("--n notanumber");
        assert_eq!(a.get("n", 42usize), 42);
        assert_eq!(a.get("absent", 1.5f64), 1.5);
    }

    #[test]
    fn switches() {
        let a = args("--full --n 10");
        assert!(a.has("full"));
        assert!(a.has("n"));
        assert!(!a.has("quick"));
    }

    #[test]
    fn switch_followed_by_flag() {
        let a = args("--verbose --n 5");
        assert!(a.has("verbose"));
        assert_eq!(a.get("n", 0usize), 5);
    }
}
