//! Writes `BENCH_commute.json` at the repo root: a schema-versioned
//! cad-obs report benchmarking every commute-distance oracle backend on
//! the §4.1 GMM workload (per-instance build times, PCG iteration and
//! residual digests, SpMV counts).
//!
//! ```text
//! cargo run --release -p cad-bench --bin bench_report -- \
//!     [--n 300] [--k 25] [--seed 7] [--threads 1] \
//!     [--out BENCH_commute.json] [--quiet]
//! ```
//!
//! The output validates against the `cad validate-report` schema; see
//! EXPERIMENTS.md for the field-by-field description.

use cad_bench::Args;
use cad_commute::{CommuteTimeEngine, EmbeddingOptions, EngineOptions};
use cad_datasets::{GmmBenchmark, GmmBenchmarkOptions};

fn main() {
    let args = Args::from_env();
    args.apply_verbosity();
    let n = args.get("n", 300usize);
    let k = args.get("k", 25usize);
    let seed = args.get("seed", 7u64);
    let threads = args.get("threads", 1usize);
    let out = args.get(
        "out",
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_commute.json").to_string(),
    );

    let mut opts = GmmBenchmarkOptions::with_n(n);
    opts.seed = seed;
    let bench = GmmBenchmark::generate(&opts).expect("benchmark realization");
    let seq = bench.seq;

    let backends: [(&str, EngineOptions); 3] = [
        ("exact", EngineOptions::Exact),
        (
            "embedding",
            EngineOptions::Approximate(EmbeddingOptions {
                k,
                threads,
                ..Default::default()
            }),
        ),
        ("corrected", EngineOptions::Corrected),
    ];

    let mut report = cad_obs::Report::new("bench_commute");
    for (label, engine) in &backends {
        let _span = cad_obs::span!("bench_backend");
        for (t, g) in seq.graphs().iter().enumerate() {
            let (oracle, secs) =
                cad_obs::time_it(|| CommuteTimeEngine::compute(g, engine).expect("oracle build"));
            let stats = oracle
                .build_stats()
                .cloned()
                .unwrap_or_else(|| cad_obs::OracleBuildStats::direct(oracle.kind().name(), secs));
            report.instances.push(cad_obs::InstanceReport {
                t: t as u64,
                backend: stats.backend.to_string(),
                build_secs: secs,
                jl_dim: stats.jl_dim.map(|d| d as u64),
                n_solves: stats.solves.len() as u64,
                iterations: stats.iteration_summary(),
                residuals: stats.residual_summary(),
            });
            for (row, s) in stats.solves.iter().enumerate() {
                report.solves.push(cad_obs::SolveReport {
                    context: format!("{label}/instance={t}/row={row}"),
                    iterations: s.iterations as u64,
                    residual: s.relative_residual,
                    converged: s.converged,
                });
            }
            cad_obs::progress!("{label}: instance {t} built in {secs:.3}s");
        }
    }
    report.absorb_snapshot(&cad_obs::global().snapshot());
    for (name, value) in cad_obs::counters::snapshot() {
        report.counters.insert(name.to_string(), value);
    }
    // The worker-thread count is part of the measurement conditions:
    // record it so bench-diff compares like with like.
    report
        .counters
        .insert("bench.threads".to_string(), threads as u64);
    for (name, h) in cad_obs::histograms::snapshot() {
        report.histograms.insert(name.to_string(), h);
    }
    std::fs::write(&out, report.to_json_string()).expect("write report");
    println!(
        "wrote {out} (n = {n}, k = {k}, threads = {threads}, {} instance builds, {} solves)",
        report.instances.len(),
        report.solves.len()
    );
}
