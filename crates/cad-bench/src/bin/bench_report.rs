//! Writes `BENCH_commute.json` at the repo root: a schema-versioned
//! cad-obs report benchmarking every commute-distance oracle backend on
//! the §4.1 GMM workload (per-instance build times, PCG iteration and
//! residual digests, SpMV counts).
//!
//! ```text
//! cargo run --release -p cad-bench --bin bench_report -- \
//!     [--n 300] [--k 25] [--seed 7] [--threads 1] \
//!     [--out BENCH_commute.json] [--store-dir <dir>] [--quiet]
//! ```
//!
//! The **first** pass builds block-partitioned oracles (`--partition`,
//! default 4 blocks) for the exact and embedding backends and records
//! per-instance build times (`part.build_secs.<backend>`), the
//! per-block solve histograms (flattened as
//! `part_block_solve_secs{block=...}` rows) and the heap peak at the
//! end of the pass (`part.peak_heap_bytes`). It runs before any
//! monolithic build on purpose: the counting allocator's peak is
//! process-monotone, so the partitioned peak is only meaningful while
//! no monolithic oracle has yet materialized its dense matrices —
//! compare `part.peak_heap_bytes` against the report's final
//! `memory.heap_peak_bytes` to see the partitioned memory headroom.
//!
//! A second pass runs every backend through the `cad-store` oracle
//! cache twice — cold (miss + build + persist) and warm (artifact
//! load) — and records both as `store.cold_build_secs.<backend>` /
//! `store.warm_load_secs.<backend>` summaries. Without `--store-dir`
//! the cache lives in a throwaway temp directory that is wiped first,
//! so the cold pass is genuinely cold; an explicit `--store-dir` is
//! used as-is (point it at a warm cache to measure only loads).
//!
//! The output validates against the `cad validate-report` schema; see
//! EXPERIMENTS.md for the field-by-field description.

use cad_bench::Args;
use cad_commute::{CommuteTimeEngine, EmbeddingOptions, EngineOptions, OracleProvider};
use cad_datasets::{GmmBenchmark, GmmBenchmarkOptions};
use cad_store::OracleStore;

/// Count every heap event so the report's `memory` section and the
/// per-backend allocation summaries are exact, not sampled.
#[global_allocator]
static ALLOC: cad_obs::CountingAlloc = cad_obs::CountingAlloc::new();

fn main() {
    let args = Args::from_env();
    args.apply_verbosity();
    let n = args.get("n", 300usize);
    let k = args.get("k", 25usize);
    let seed = args.get("seed", 7u64);
    let threads = args.get("threads", 1usize);
    let out = args.get(
        "out",
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_commute.json").to_string(),
    );

    let mut opts = GmmBenchmarkOptions::with_n(n);
    opts.seed = seed;
    let bench = GmmBenchmark::generate(&opts).expect("benchmark realization");
    let seq = bench.seq;

    let backends: [(&str, EngineOptions); 3] = [
        ("exact", EngineOptions::Exact),
        (
            "embedding",
            EngineOptions::Approximate(EmbeddingOptions {
                k,
                threads,
                ..Default::default()
            }),
        ),
        ("corrected", EngineOptions::Corrected),
    ];

    let mut report = cad_obs::Report::new("bench_commute");

    // Block-partitioned pass FIRST (see the module docs): the heap peak
    // never decreases, so measuring the partitioned footprint after a
    // monolithic build would just read back the monolithic peak.
    let part_spec = cad_commute::PartitionSpec {
        blocks: args.get("partition", 4usize),
        mode: cad_commute::PartitionMode::Auto,
    };
    for (label, engine) in &backends[..2] {
        let _span = cad_obs::span!("bench_partitioned");
        let times: Vec<f64> = seq
            .graphs()
            .iter()
            .map(|g| {
                cad_obs::time_it(|| {
                    cad_part::PartitionedOracle::build(g, engine, part_spec, threads)
                        .expect("partitioned build")
                })
                .1
            })
            .collect();
        let s = cad_obs::Summary::of(times);
        cad_obs::progress!(
            "partitioned/{label}: mean build {:.3}s over {} instances ({} blocks)",
            s.mean(),
            seq.len(),
            part_spec.blocks
        );
        report
            .summaries
            .insert(format!("part.build_secs.{label}"), s);
    }
    report.summaries.insert(
        "part.peak_heap_bytes".to_string(),
        cad_obs::Summary::of([cad_obs::alloc::stats().heap_peak_bytes as f64]),
    );

    for (label, engine) in &backends {
        let _span = cad_obs::span!("bench_backend");
        let mem_before = cad_obs::alloc::stats();
        for (t, g) in seq.graphs().iter().enumerate() {
            let (oracle, secs) =
                cad_obs::time_it(|| CommuteTimeEngine::compute(g, engine).expect("oracle build"));
            let stats = oracle
                .build_stats()
                .cloned()
                .unwrap_or_else(|| cad_obs::OracleBuildStats::direct(oracle.kind().name(), secs));
            report.instances.push(cad_obs::InstanceReport {
                t: t as u64,
                backend: stats.backend.to_string(),
                build_secs: secs,
                jl_dim: stats.jl_dim.map(|d| d as u64),
                n_solves: stats.solves.len() as u64,
                iterations: stats.iteration_summary(),
                residuals: stats.residual_summary(),
            });
            for (row, s) in stats.solves.iter().enumerate() {
                report.solves.push(cad_obs::SolveReport {
                    context: format!("{label}/instance={t}/row={row}"),
                    iterations: s.iterations as u64,
                    residual: s.relative_residual,
                    converged: s.converged,
                    residual_trace: s.residual_trace.clone(),
                });
            }
            cad_obs::progress!("{label}: instance {t} built in {secs:.3}s");
        }
        // Allocation cost per instance build (counting allocator delta
        // over the whole backend pass, divided evenly).
        let mem_after = cad_obs::alloc::stats();
        let builds = seq.len() as f64;
        report.summaries.insert(
            format!("mem.allocs_per_build.{label}"),
            cad_obs::Summary::of([(mem_after.allocs - mem_before.allocs) as f64 / builds]),
        );
        report.summaries.insert(
            format!("mem.bytes_per_build.{label}"),
            cad_obs::Summary::of([
                (mem_after.bytes_allocated - mem_before.bytes_allocated) as f64 / builds,
            ]),
        );
    }
    // Cold vs. warm oracle acquisition through the content-addressed
    // store: the first pass builds and persists every artifact, the
    // second deserializes them. Both are per-instance timings.
    let store_dir = match args.has("store-dir") {
        true => std::path::PathBuf::from(args.get("store-dir", String::new())),
        false => {
            let dir = std::env::temp_dir().join(format!("cad-bench-store-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            dir
        }
    };
    let store = OracleStore::open(&store_dir).expect("open oracle store");
    for (label, engine) in &backends {
        let _span = cad_obs::span!("bench_store_backend");
        let timed_pass = || -> Vec<f64> {
            seq.graphs()
                .iter()
                .enumerate()
                .map(|(t, g)| cad_obs::time_it(|| store.oracle(t, g, engine).expect("oracle")).1)
                .collect()
        };
        let cold = timed_pass();
        let warm = timed_pass();
        let (c, w) = (cad_obs::Summary::of(cold), cad_obs::Summary::of(warm));
        cad_obs::progress!(
            "{label}: store cold mean {:.3}s, warm mean {:.3}s over {} instances",
            c.mean(),
            w.mean(),
            seq.len()
        );
        report
            .summaries
            .insert(format!("store.cold_build_secs.{label}"), c);
        report
            .summaries
            .insert(format!("store.warm_load_secs.{label}"), w);
    }

    // Cold build vs incremental update: perturb a few edge weights of
    // instance 0 (the small-delta workload `--update-mode incremental`
    // targets) and time `apply_delta` against a from-scratch build of
    // the perturbed graph, per updatable backend.
    let g0 = &seq.graphs()[0];
    let perturbed_edges: Vec<(usize, usize, f64)> = g0
        .edges()
        .enumerate()
        .map(|(idx, (u, v, w))| {
            let scale = if idx % 5 == 0 { 1.2 } else { 1.0 };
            (u, v, w * scale)
        })
        .collect();
    let perturbed =
        cad_graph::WeightedGraph::from_edges(g0.n_nodes(), &perturbed_edges).expect("perturbed");
    let delta = cad_commute::EdgeDelta::between(g0, &perturbed);
    assert!(!delta.structural, "weight-only perturbation");
    for (label, engine) in &backends {
        let base = CommuteTimeEngine::compute(g0, engine).expect("base oracle");
        let (_, cold_secs) =
            cad_obs::time_it(|| CommuteTimeEngine::compute(&perturbed, engine).expect("cold"));
        let mut candidate = base.clone_box();
        let (outcome, update_secs) = cad_obs::time_it(|| {
            candidate
                .as_updatable()
                .expect("updatable backend")
                .apply_delta(&delta)
                .expect("apply_delta")
        });
        assert!(
            matches!(outcome, cad_commute::UpdateOutcome::Applied { .. }),
            "{label}: weight-only delta must update in place"
        );
        cad_obs::progress!(
            "{label}: cold build {cold_secs:.4}s vs incremental update {update_secs:.4}s"
        );
        report.summaries.insert(
            format!("update.cold_build_secs.{label}"),
            cad_obs::Summary::of([cold_secs]),
        );
        report.summaries.insert(
            format!("update.incremental_update_secs.{label}"),
            cad_obs::Summary::of([update_secs]),
        );
    }

    report.absorb_snapshot(&cad_obs::global().snapshot());
    for (name, value) in cad_obs::counters::snapshot() {
        report.counters.insert(name.to_string(), value);
    }
    // The worker-thread count is part of the measurement conditions:
    // record it so bench-diff compares like with like.
    report
        .counters
        .insert("bench.threads".to_string(), threads as u64);
    for (name, h) in cad_obs::histograms::snapshot() {
        report.histograms.insert(name.to_string(), h);
    }
    // Labeled histograms flatten to `name{label=value}` rows — this is
    // where the per-block solve work units (`part_block_solve_secs`)
    // land, one row per block label.
    for (name, label, cells) in cad_obs::histograms::labeled::snapshot() {
        for (value, h) in cells {
            if h.count > 0 {
                report
                    .histograms
                    .insert(format!("{name}{{{label}={value}}}"), h);
            }
        }
    }
    for (name, value) in cad_obs::gauges::snapshot() {
        report.gauges.insert(name.to_string(), value);
    }
    report.capture_memory();
    std::fs::write(&out, report.to_json_string()).expect("write report");
    println!(
        "wrote {out} (n = {n}, k = {k}, threads = {threads}, {} instance builds, {} solves, \
         peak heap {} bytes)",
        report.instances.len(),
        report.solves.len(),
        report.memory.heap_peak_bytes
    );
}
