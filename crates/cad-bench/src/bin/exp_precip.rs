//! Reproduces **Figure 9** and **Figure 10** of the paper on the
//! precipitation-field simulator (§4.2.3; the NOAA reanalysis data is
//! gated — DESIGN.md §5).
//!
//! ```text
//! cargo run --release -p cad-bench --bin exp_precip -- [--l 30] [--seed ...]
//! ```
//!
//! * Figure 9 — the top anomalous edges at the teleconnection transition
//!   connect locations in the shifted regions with reference locations
//!   (the La-Niña wet/dry pattern).
//! * Figure 10 — the per-region year-over-year deltas: the event shift
//!   hides below the largest natural interannual swings, which is why a
//!   per-location time-series detector misses it while CAD — seeing the
//!   *simultaneity* through graph structure — does not.

use cad_bench::{Args, Table};
use cad_core::{CadDetector, CadOptions, NodeScorer};
use cad_datasets::{PrecipSim, PrecipSimOptions};

fn main() {
    let args = Args::from_env();
    let l = args.get("l", 30usize);
    let mut opts = PrecipSimOptions::default();
    opts.seed = args.get("seed", opts.seed);

    let sim = PrecipSim::generate(&opts).expect("precip simulator");
    let det = CadDetector::new(CadOptions::default());
    let event_t = sim.event_year - 1;

    // Per-transition anomaly mass (Σ ΔE).
    let scored = det.score_sequence(&sim.seq).expect("scores");
    let mass: Vec<f64> = scored
        .iter()
        .map(|s| s.iter().map(|e| e.score).sum::<f64>())
        .collect();
    println!("== anomaly mass per yearly transition ==");
    let mut t = Table::new(&["transition", "Σ ΔE", "note"]);
    for (tr, m) in mass.iter().enumerate() {
        let note = if tr == event_t {
            "teleconnection event"
        } else if tr == sim.event_year {
            "event reverts"
        } else {
            ""
        };
        t.row(&[format!("{tr}->{}", tr + 1), format!("{m:.1}"), note.into()]);
    }
    t.print();

    // ---- Figure 9: top anomalous edges at the event ----
    println!("\n== Figure 9: top anomalous edges at the event transition ==");
    let mut t9 = Table::new(&["edge", "ΔE", "region pair", "shift pattern"]);
    let kind = |r: usize| -> &'static str {
        if sim.wetter_regions.contains(&r) {
            "wetter"
        } else if sim.drier_regions.contains(&r) {
            "drier"
        } else {
            "reference"
        }
    };
    for e in scored[event_t].iter().take(12) {
        let (ru, rv) = (sim.region[e.u], sim.region[e.v]);
        t9.row(&[
            format!("{} - {}", e.u, e.v),
            format!("{:.2}", e.score),
            format!("{ru} - {rv}"),
            format!("{} - {}", kind(ru), kind(rv)),
        ]);
    }
    t9.print();

    // ---- Figure 10: regional year-over-year deltas ----
    println!("\n== Figure 10: mean year-over-year precipitation delta by region ==");
    let mut t10 = Table::new(&["region", "kind", "event Δ", "max natural |Δ|"]);
    for r in 0..10 {
        let event_delta = sim.region_mean_delta(r, event_t);
        let max_nat = (0..sim.seq.n_transitions())
            .filter(|&tr| tr != event_t && tr != sim.event_year)
            .map(|tr| sim.region_mean_delta(r, tr).abs())
            .fold(0.0f64, f64::max);
        t10.row(&[
            r.to_string(),
            kind(r).into(),
            format!("{event_delta:+.2}"),
            format!("{max_nat:.2}"),
        ]);
    }
    t10.print();

    // ---- Reproduction contract ----
    // 1. The event transition (and its reversion) dominate anomaly mass.
    let mut order: Vec<usize> = (0..mass.len()).collect();
    order.sort_by(|&a, &b| mass[b].partial_cmp(&mass[a]).expect("finite"));
    assert!(
        order[..2].contains(&event_t),
        "event transition must be in the top 2 by anomaly mass: {order:?}"
    );

    // 2. The paper's Figure 9 signature: top anomalous edges connect a
    //    *shifted* region to a reference (or oppositely shifted) region
    //    — both endpoints are reported, exactly as the paper marks both
    //    southern Africa (shifted) and equatorial Africa (unchanged).
    let affected: std::collections::HashSet<usize> = sim.affected_locations().into_iter().collect();
    let top20 = &scored[event_t][..20.min(scored[event_t].len())];
    let edge_hits = top20
        .iter()
        .filter(|e| affected.contains(&e.u) || affected.contains(&e.v))
        .count();
    let edge_precision = edge_hits as f64 / top20.len() as f64;
    println!("\ntop-20 edges touching a shifted region: {edge_precision:.2}");
    assert!(
        edge_precision >= 0.8,
        "top edges must involve the shifted regions"
    );
    // Every shifted region appears among the top-300 edges (~7% of the
    // support): the wet and
    // dry poles of the teleconnection are detected *simultaneously*.
    let top50 = &scored[event_t][..300.min(scored[event_t].len())];
    for &r in sim.wetter_regions.iter().chain(&sim.drier_regions) {
        let seen = top50
            .iter()
            .any(|e| sim.region[e.u] == r || sim.region[e.v] == r);
        assert!(seen, "shifted region {r} missing from the top edges");
    }
    println!("all 4 shifted regions appear in the top-300 edges (teleconnection coverage)");

    // Node-level comparison budget for the baseline below.
    let node_scores = det.node_scores(&sim.seq).expect("node scores");
    let mut rank: Vec<usize> = (0..sim.seq.n_nodes()).collect();
    rank.sort_by(|&a, &b| {
        node_scores[event_t][b]
            .partial_cmp(&node_scores[event_t][a])
            .expect("finite")
    });
    let hits = rank[..l].iter().filter(|n| affected.contains(n)).count();
    let cad_precision = hits as f64 / l as f64;
    println!("CAD shifted-region precision@{l}: {cad_precision:.2}");

    // 3. The Figure 10 claim: per-location time-series analysis cannot
    //    single out the event *year*. For every transition, count the
    //    locations whose year-over-year delta exceeds 2.5σ of their own
    //    history — natural variation produces as many alarms in ordinary
    //    years as in the event year, so a threshold detector drowns,
    //    while CAD's anomaly mass peaks exactly at the event.
    let n = sim.seq.n_nodes();
    let n_trans = sim.seq.n_transitions();
    let alarms_at = |t: usize| -> usize {
        (0..n)
            .filter(|&loc| {
                let deltas = sim.yoy_deltas(loc);
                let others: Vec<f64> = deltas
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != t)
                    .map(|(_, d)| *d)
                    .collect();
                let mean = others.iter().sum::<f64>() / others.len() as f64;
                let var = others.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>()
                    / others.len() as f64;
                (deltas[t] - mean).abs() > 2.5 * var.sqrt().max(1e-9)
            })
            .count()
    };
    let alarm_counts: Vec<usize> = (0..n_trans).map(alarms_at).collect();
    let event_alarms = alarm_counts[event_t];
    let max_other = alarm_counts
        .iter()
        .enumerate()
        .filter(|&(t, _)| t != event_t && t != sim.event_year)
        .map(|(_, &c)| c)
        .max()
        .unwrap();
    println!("per-location z>2.5 alarms: event year {event_alarms}, max ordinary year {max_other}");
    assert!(
        event_alarms < 3 * max_other.max(1),
        "the event must NOT stand out to a per-location threshold detector"
    );
    // ...while CAD's graph-level mass puts the event transition first.
    assert_eq!(
        order[0], event_t,
        "CAD anomaly mass must peak at the event transition: {order:?}"
    );
    let _ = cad_precision;

    println!("precip shape checks passed");
}
