//! Ablation of the paper's §3.1 design choice: commute-time distance vs
//! shortest-path distance as the `d_t(i, j)` inside the CAD score.
//!
//! ```text
//! cargo run --release -p cad-bench --bin exp_distance_ablation -- \
//!     [--replicas 40] [--jitter 0.3] [--seed 7]
//! ```
//!
//! The paper picks commute time because it is "averaged over all paths
//! (and not just the shortest path)", making it "more robust to data
//! perturbations". Two measurements on the 17-node toy example:
//!
//! 1. **margin** — the anomalous-to-benign score separation factor
//!    (`min anomalous ΔE / max benign ΔE`). A shortest-path distance
//!    passes a benign direct-edge jitter straight through
//!    (`Δd = Δ(1/w)` whenever the edge is its own shortest route),
//!    while commute time discounts it by all parallel connectivity, so
//!    the commute margin should be wider.
//! 2. **jitter stability** — multiply every edge weight by a random
//!    `(1 ± jitter)` factor (same factor at both instants, so the
//!    planted anomalies are untouched) and count how often the three
//!    planted anomalies remain the top-3 ranked edges.

use cad_bench::{Args, Table};
use cad_commute::EngineOptions;
use cad_core::{CadDetector, CadOptions};
use cad_graph::generators::toy::toy_example;
use cad_graph::{GraphSequence, WeightedGraph};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn margin(
    det: &CadDetector,
    seq: &GraphSequence,
    anomalous: &[(usize, usize)],
    benign: &[(usize, usize)],
) -> f64 {
    let scored = det.score_sequence(seq).expect("scores");
    let score_of = |u: usize, v: usize| {
        scored[0]
            .iter()
            .find(|e| (e.u, e.v) == (u.min(v), u.max(v)))
            .map_or(0.0, |e| e.score)
    };
    let a_min = anomalous
        .iter()
        .map(|&(u, v)| score_of(u, v))
        .fold(f64::INFINITY, f64::min);
    let b_max = benign
        .iter()
        .map(|&(u, v)| score_of(u, v))
        .fold(0.0f64, f64::max);
    a_min / b_max.max(1e-12)
}

fn top3_correct(det: &CadDetector, seq: &GraphSequence, anomalous: &[(usize, usize)]) -> bool {
    let scored = det.score_sequence(seq).expect("scores");
    let top: Vec<(usize, usize)> = scored[0].iter().take(3).map(|e| (e.u, e.v)).collect();
    anomalous.iter().all(|e| top.contains(e))
}

fn jittered(seq: &GraphSequence, rng: &mut StdRng, jitter: f64) -> GraphSequence {
    // One multiplicative factor per *edge identity*, applied at both
    // instants: the background wobbles, the planted changes persist.
    let mut factors = std::collections::HashMap::new();
    let graphs: Vec<WeightedGraph> = seq
        .graphs()
        .iter()
        .map(|g| {
            let edges: Vec<(usize, usize, f64)> = g
                .edges()
                .map(|(u, v, w)| {
                    let f = *factors
                        .entry((u, v))
                        .or_insert_with(|| 1.0 + jitter * (2.0 * rng.random::<f64>() - 1.0));
                    (u, v, w * f)
                })
                .collect();
            WeightedGraph::from_edges(g.n_nodes(), &edges).expect("jittered edges valid")
        })
        .collect();
    GraphSequence::new(graphs).expect("same shape")
}

fn main() {
    let args = Args::from_env();
    let replicas = args.get("replicas", 40usize);
    let jitter = args.get("jitter", 0.3f64);
    let seed = args.get("seed", 7u64);

    let toy = toy_example();
    let engines: [(&str, EngineOptions); 2] = [
        ("commute", EngineOptions::Exact),
        ("shortest-path", EngineOptions::ShortestPath),
    ];

    let mut rows = Vec::new();
    let mut margins = [0.0f64; 2];
    let mut stability = [0usize; 2];
    for (ei, (name, engine)) in engines.iter().enumerate() {
        let det = CadDetector::new(CadOptions {
            engine: *engine,
            ..Default::default()
        });
        margins[ei] = margin(
            &det,
            &toy.seq,
            &toy.anomalous_edges,
            &toy.benign_changed_edges,
        );
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..replicas {
            let seq = jittered(&toy.seq, &mut rng, jitter);
            if top3_correct(&det, &seq, &toy.anomalous_edges) {
                stability[ei] += 1;
            }
        }
        rows.push((name.to_string(), margins[ei], stability[ei]));
    }

    println!(
        "== §3.1 ablation: commute vs shortest-path distance \
         (toy example, ±{:.0}% jitter, {replicas} replicas) ==",
        jitter * 100.0
    );
    let mut t = Table::new(&["distance", "anomalous/benign margin", "top-3 stable"]);
    for (name, m, s) in &rows {
        t.row(&[name.clone(), format!("{m:.1}x"), format!("{s}/{replicas}")]);
    }
    t.print();

    assert!(
        margins[0] > margins[1],
        "commute margin {:.1} should exceed shortest-path margin {:.1} (§3.1 robustness)",
        margins[0],
        margins[1]
    );
    assert!(
        stability[0] >= stability[1],
        "commute ranking should be at least as jitter-stable: {} vs {}",
        stability[0],
        stability[1]
    );
    println!("\ndistance-ablation shape checks passed (robustness claim of §3.1 confirmed)");
}
