//! Reproduces the **§4.1.3 scalability study**: per-instance runtimes of
//! CAD, COM, ACT, ADJ and CLC on sparse random graphs (`m = n`,
//! sparsity 1/n, as in the paper).
//!
//! ```text
//! cargo run --release -p cad-bench --bin exp_scalability -- \
//!     [--max-n 100000] [--clc-cap 5000] [--reps 3] [--seed 42] [--threads 1]
//! ```
//!
//! Paper findings at `n = 10⁷`: CAD ≈ COM ≈ 5 min, ACT ≈ 1 min,
//! ADJ ≈ 10 s; CLC ≈ CAD/3 at `m = n` but degrades sharply with
//! density. The reproduction target is the ordering and the near-linear
//! growth of CAD (its `O(n log n)` claim), not wall-clock parity with
//! the authors' 2010-era Xeon. CLC is an all-pairs-shortest-path method;
//! above `--clc-cap` nodes it is skipped (the paper's "approximately one
//! third the time of CAD" is not reachable with exact closeness — see
//! EXPERIMENTS.md).

use cad_baselines::{ActDetector, AdjDetector, ClcDetector, ComDetector, ComSupport};
use cad_bench::{time_it, Args, Table};
use cad_commute::{EmbeddingOptions, EngineOptions};
use cad_core::{CadDetector, CadOptions, NodeScorer};
use cad_graph::generators::random::sparse_random_graph;
use cad_graph::{GraphSequence, WeightedGraph};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A two-instance sequence: a sparse random graph and a lightly edited
/// copy (1% of edges reweighted, a few added), so every detector has a
/// realistic transition to process.
fn workload(n: usize, seed: u64) -> GraphSequence {
    let g0 = sparse_random_graph(n, n, seed).expect("valid size");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF);
    let mut edges: Vec<(usize, usize, f64)> = g0.edges().collect();
    for e in edges.iter_mut() {
        if rng.random::<f64>() < 0.01 {
            e.2 = 1.0 - rng.random::<f64>();
        }
    }
    for _ in 0..(n / 100).max(1) {
        let u = rng.random_range(0..n);
        let mut v = rng.random_range(0..n - 1);
        if v >= u {
            v += 1;
        }
        edges.push((u, v, 1.0 - rng.random::<f64>()));
    }
    let g1 = WeightedGraph::from_edges(n, &edges).expect("valid edits");
    GraphSequence::new(vec![g0, g1]).expect("two instances")
}

fn main() {
    let args = Args::from_env();
    args.apply_verbosity();
    let max_n = args.get("max-n", 100_000usize);
    let clc_cap = args.get("clc-cap", 5_000usize);
    let reps = args.get("reps", 1usize).max(1);
    let seed = args.get("seed", 42u64);
    // Worker threads for oracle builds and scoring (0 = one per core).
    // Purely a wall-clock knob: the scores are thread-count invariant.
    let threads = args.get("threads", 1usize);

    // k = 10 per the paper's §4.1.3 choice ("we select k=10"). The
    // spanning-tree preconditioner stands in for the paper's
    // Spielman-Teng solver on these filament-heavy random graphs, and a
    // 1e-4 relative residual is plenty for score *ranking*.
    let embedding = EmbeddingOptions {
        k: 10,
        solver: cad_linalg::solve::LaplacianSolverOptions {
            precond: cad_linalg::solve::laplacian::PrecondKind::SpanningTree,
            cg: cad_linalg::solve::CgOptions {
                tol: 1e-4,
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    };
    let approx = EngineOptions::Approximate(embedding);
    let cad = CadDetector::new(CadOptions {
        engine: approx,
        threads,
        ..Default::default()
    });
    let com = ComDetector::with_threads(approx, ComSupport::EdgeUnion, threads);
    let act = ActDetector::with_window(1);
    let adj = AdjDetector::new();
    let clc = ClcDetector::new();

    let sizes: Vec<usize> = [
        1_000usize, 3_000, 10_000, 30_000, 100_000, 300_000, 1_000_000, 3_000_000, 10_000_000,
    ]
    .into_iter()
    .filter(|&n| n <= max_n)
    .collect();

    println!("== §4.1.3 scalability: seconds per graph instance (m = n) ==");
    let mut t = Table::new(&["n", "CAD", "COM", "ACT", "ADJ", "CLC"]);
    let mut cad_secs: Vec<(usize, f64)> = Vec::new();
    let mut last_row: Option<[f64; 5]> = None;
    for &n in &sizes {
        let seq = workload(n, seed);
        let run = |m: &dyn NodeScorer| -> f64 {
            let mut total = 0.0;
            for _ in 0..reps {
                let (r, secs) = time_it(|| m.node_scores(&seq).expect("scores"));
                drop(r);
                total += secs;
            }
            // Two instances processed per call.
            total / (reps as f64 * seq.len() as f64)
        };
        let s_cad = run(&cad);
        let s_com = run(&com);
        let s_act = run(&act);
        let s_adj = run(&adj);
        let s_clc = if n <= clc_cap { run(&clc) } else { f64::NAN };
        cad_secs.push((n, s_cad));
        last_row = Some([s_cad, s_com, s_act, s_adj, s_clc]);
        t.row(&[
            n.to_string(),
            format!("{s_cad:.3}"),
            format!("{s_com:.3}"),
            format!("{s_act:.3}"),
            format!("{s_adj:.3}"),
            if s_clc.is_nan() {
                "skipped".into()
            } else {
                format!("{s_clc:.3}")
            },
        ]);
        cad_obs::progress!("n = {n} done");
    }
    t.print();

    // Reproduction contract on the largest size measured:
    // ADJ fastest, ACT below CAD, COM within ~3x of CAD (it runs the
    // same embedding), and CAD's growth near-linear.
    let row = last_row.expect("at least one size");
    let (s_cad, s_com, s_act, s_adj) = (row[0], row[1], row[2], row[3]);
    assert!(s_adj <= s_cad, "ADJ ({s_adj}s) must be the cheapest");
    assert!(
        s_act <= s_cad * 1.2,
        "ACT ({s_act}s) should undercut CAD ({s_cad}s)"
    );
    assert!(
        s_com <= 3.0 * s_cad + 0.05 && s_cad <= 3.0 * s_com + 0.05,
        "CAD ({s_cad}s) and COM ({s_com}s) share the embedding cost"
    );
    if cad_secs.len() >= 3 {
        let (n0, t0) = cad_secs[cad_secs.len() - 3];
        let (n1, t1) = cad_secs[cad_secs.len() - 1];
        let growth = t1 / t0.max(1e-9);
        let size_ratio = n1 as f64 / n0 as f64;
        let exponent = growth.ln() / size_ratio.ln();
        println!(
            "\nCAD empirical scaling ~ n^{exponent:.2} over the last {size_ratio:.0}x \
             (paper: O(n log n) with a Spielman-Teng solver; our PCG substitution \
             lands at ~n^1.5-1.8 on this threshold-regime workload)"
        );
        assert!(
            exponent < 1.9,
            "CAD scaling n^{exponent:.2} worse than the documented PCG bound"
        );
    }
    println!("scalability shape checks passed");
}
