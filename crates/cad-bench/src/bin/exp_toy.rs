//! Reproduces **Table 1**, **Table 2**, **Figure 2** and **Figure 3** of
//! the paper on the 17-node toy example (§3.5).
//!
//! ```text
//! cargo run --release -p cad-bench --bin exp_toy [-- --embedding]
//! ```
//!
//! * Table 1 — `ΔE_t` for every edge with a non-zero score, exact
//!   commute times (the paper uses eq. 3 directly at n = 17).
//! * Table 2 — `ΔN_t` for all 17 nodes.
//! * Figure 2 (with `--embedding`) — 2-D Laplacian eigenmap coordinates
//!   of both instances.
//! * Figure 3 — normalized CAD vs ACT node scores side by side.
//!
//! The paper's concrete numbers (10.6 / 9.56 / 8.99 …) depend on edge
//! weights Figure 1 only specifies pictorially; the reproduction target
//! is the *shape*: three anomalous edges scoring an order of magnitude
//! above the two benign changed edges, everything else exactly zero, and
//! CAD separating responsible nodes more cleanly than ACT.

use cad_baselines::ActDetector;
use cad_bench::{Args, Table};
use cad_commute::eigenmap::laplacian_eigenmap;
use cad_core::node_scores::normalize_by_max;
use cad_core::{CadDetector, CadOptions, NodeScorer};
use cad_graph::generators::toy::{node_label, toy_example};

fn main() {
    let args = Args::from_env();
    let toy = toy_example();
    let det = CadDetector::new(CadOptions {
        engine: cad_commute::EngineOptions::Exact,
        ..Default::default()
    });

    // ---- Table 1: edge scores ΔE_t ----
    let scored = det.score_sequence(&toy.seq).expect("toy sequence scores");
    println!("== Table 1: edge anomaly scores ΔE_t (non-zero) ==");
    let mut t1 = Table::new(&["edge", "ΔE", "|ΔA|", "|Δc|"]);
    for e in &scored[0] {
        t1.row(&[
            format!("{},{}", node_label(e.u), node_label(e.v)),
            format!("{:.3}", e.score),
            format!("{:.3}", e.d_weight.abs()),
            format!("{:.3}", e.d_commute.abs()),
        ]);
    }
    t1.print();

    // ---- Table 2: node scores ΔN_t ----
    let cad_nodes = det.node_scores(&toy.seq).expect("toy node scores");
    println!("\n== Table 2: node anomaly scores ΔN_t ==");
    let mut t2 = Table::new(&["node", "ΔN"]);
    for (i, s) in cad_nodes[0].iter().enumerate() {
        t2.row(&[node_label(i), format!("{s:.3}")]);
    }
    t2.print();

    // ---- Figure 2: eigenmap embeddings ----
    if args.has("embedding") {
        println!("\n== Figure 2: Laplacian eigenmap coordinates (v2, v3) ==");
        for (t, g) in toy.seq.graphs().iter().enumerate() {
            let coords = laplacian_eigenmap(g, 2).expect("17-node eigenmap");
            println!("-- instance t{} --", t);
            let mut tf = Table::new(&["node", "x", "y"]);
            for (i, c) in coords.iter().enumerate() {
                tf.row(&[
                    node_label(i),
                    format!("{:+.4}", c[0]),
                    format!("{:+.4}", c[1]),
                ]);
            }
            tf.print();
        }
    }

    // ---- Figure 3: normalized CAD vs ACT ----
    let act = ActDetector::with_window(1);
    let act_nodes = act.node_scores(&toy.seq).expect("ACT node scores");
    let cad_norm = normalize_by_max(&cad_nodes[0]);
    let act_norm = normalize_by_max(&act_nodes[0]);
    println!("\n== Figure 3: normalized node scores, CAD vs ACT ==");
    let mut t3 = Table::new(&["node", "CAD", "ACT", "ground truth"]);
    for i in 0..17 {
        t3.row(&[
            node_label(i),
            format!("{:.3}", cad_norm[i]),
            format!("{:.3}", act_norm[i]),
            if toy.anomalous_nodes.contains(&i) {
                "anomalous".into()
            } else {
                String::new()
            },
        ]);
    }
    t3.print();

    // ---- Shape assertions (the reproduction contract) ----
    let score_of = |u: usize, v: usize| {
        scored[0]
            .iter()
            .find(|e| (e.u, e.v) == (u.min(v), u.max(v)))
            .map_or(0.0, |e| e.score)
    };
    let anomalous_min = toy
        .anomalous_edges
        .iter()
        .map(|&(u, v)| score_of(u, v))
        .fold(f64::INFINITY, f64::min);
    let benign_max = toy
        .benign_changed_edges
        .iter()
        .map(|&(u, v)| score_of(u, v))
        .fold(0.0f64, f64::max);
    println!(
        "\nseparation: min(anomalous ΔE) = {anomalous_min:.3}, max(benign ΔE) = {benign_max:.3}, ratio = {:.1}x",
        anomalous_min / benign_max.max(1e-12)
    );
    assert!(
        anomalous_min > 10.0 * benign_max,
        "Table 1 shape violated: anomalous edges must dominate benign ones"
    );
    assert_eq!(
        scored[0].len(),
        5,
        "exactly the five changed edges have non-zero ΔE support"
    );
    println!("toy-example shape checks passed");
}
