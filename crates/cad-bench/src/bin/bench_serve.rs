//! Loopback load benchmark for the `cad-serve` HTTP detection service:
//! N concurrent keep-alive clients, each driving its own session with a
//! stream of snapshot pushes, measured end to end from the client side.
//!
//! ```text
//! cargo run --release -p cad-bench --bin bench_serve -- \
//!     [--clients 4] [--instances 40] [--nodes 32] [--workers 4] \
//!     [--out BENCH_serve.json] [--quiet]
//! ```
//!
//! Reports client-observed push latency (`serve.client_push_secs`, with
//! p50/p99 via the histogram) and aggregate throughput
//! (`serve.throughput_rps`), alongside the server-side registry
//! (`serve_push_secs` histogram, `serve.requests` counter, ...) in the
//! same schema-versioned report `bench_report` writes, so `cad
//! bench-diff` can gate regressions on it.

use cad_bench::Args;
use cad_serve::{ServeConfig, Server};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// A keep-alive HTTP/1.1 client on one loopback connection.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let writer = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(writer.try_clone().expect("clone stream"));
        Client { writer, reader }
    }

    /// One round trip; returns (status, body).
    fn call(&mut self, method: &str, path: &str, body: &[u8]) -> (u16, String) {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes()).expect("write head");
        self.writer.write_all(body).expect("write body");
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).expect("status");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"))
            .parse()
            .expect("numeric status");
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("header");
            if line.trim_end().is_empty() {
                break;
            }
            if let Some(v) = line
                .to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
            {
                content_length = v.parse().expect("length");
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("body");
        (status, String::from_utf8(body).expect("utf-8"))
    }
}

/// Snapshot `i` of the workload: a unit-weight ring over `nodes`
/// vertices plus a cross-ring chord whose weight spikes every fifth
/// instance — enough change to keep the detector scoring real work.
fn snapshot_body(nodes: usize, i: usize) -> String {
    let chord = if i % 5 == 2 { 2.0 } else { 0.2 };
    let mut edges: Vec<String> = (0..nodes)
        .map(|u| format!("[{u}, {}, 1.0]", (u + 1) % nodes))
        .collect();
    edges.push(format!("[0, {}, {chord:?}]", nodes / 2));
    format!(r#"{{"nodes": {nodes}, "edges": [{}]}}"#, edges.join(", "))
}

fn main() {
    let args = Args::from_env();
    args.apply_verbosity();
    let clients = args.get("clients", 4usize);
    let instances = args.get("instances", 40usize);
    let nodes = args.get("nodes", 32usize);
    let workers = args.get("workers", 4usize);
    let out = args.get(
        "out",
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").to_string(),
    );

    let server = Server::start(ServeConfig {
        workers,
        ..Default::default()
    })
    .expect("start server");
    let addr = server.addr();

    let start = Instant::now();
    let handles: Vec<std::thread::JoinHandle<Vec<f64>>> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                let spec = format!(
                    r#"{{"nodes": {nodes}, "engine": "exact", "delta": 0.4, "label": "bench-{c}"}}"#
                );
                let (status, body) = client.call("POST", "/v1/sequences", spec.as_bytes());
                assert_eq!(status, 201, "create failed: {body}");
                let id = cad_obs::parse_json(&body)
                    .expect("json")
                    .get("id")
                    .and_then(cad_obs::Json::as_u64)
                    .expect("id");
                let path = format!("/v1/sequences/{id}/snapshots");
                let mut latencies = Vec::with_capacity(instances);
                for i in 0..instances {
                    let body = snapshot_body(nodes, i);
                    let (resp, secs) =
                        cad_obs::time_it(|| client.call("POST", &path, body.as_bytes()));
                    assert_eq!(resp.0, 200, "push {i} failed: {}", resp.1);
                    latencies.push(secs);
                }
                let (status, _) = client.call("DELETE", &format!("/v1/sequences/{id}"), b"");
                assert_eq!(status, 200);
                latencies
            })
        })
        .collect();
    let latencies: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let wall = start.elapsed().as_secs_f64();
    server.drain();

    let pushes = latencies.len();
    let rps = pushes as f64 / wall;
    let client_hist = cad_obs::Histogram::of(latencies.iter().copied());
    let (p50, p99) = (client_hist.p50(), client_hist.p99());

    let mut report = cad_obs::Report::new("bench_serve");
    report.absorb_snapshot(&cad_obs::global().snapshot());
    for (name, value) in cad_obs::counters::snapshot() {
        report.counters.insert(name.to_string(), value);
    }
    for (name, h) in cad_obs::histograms::snapshot() {
        report.histograms.insert(name.to_string(), h);
    }
    report
        .histograms
        .insert("serve.client_push_secs".to_string(), client_hist);
    report.summaries.insert(
        "serve.client_push_secs".to_string(),
        cad_obs::Summary::of(latencies),
    );
    report.summaries.insert(
        "serve.throughput_rps".to_string(),
        cad_obs::Summary::of([rps]),
    );
    // Measurement conditions, so bench-diff compares like with like.
    for (key, value) in [
        ("bench.serve_clients", clients),
        ("bench.serve_instances", instances),
        ("bench.serve_nodes", nodes),
        ("bench.serve_workers", workers),
    ] {
        report.counters.insert(key.to_string(), value as u64);
    }
    std::fs::write(&out, report.to_json_string()).expect("write report");
    println!(
        "wrote {out}: {clients} clients x {instances} pushes over {nodes} nodes -> \
         {rps:.1} req/s, p50 {:.1} ms, p99 {:.1} ms",
        p50 * 1e3,
        p99 * 1e3
    );
}
