//! Loopback load benchmark for the `cad-serve` HTTP detection service:
//! N concurrent keep-alive clients, each driving its own session with a
//! stream of snapshot pushes, measured end to end from the client side.
//!
//! ```text
//! cargo run --release -p cad-bench --bin bench_serve -- \
//!     [--clients 4] [--instances 40] [--nodes 32] [--workers 4] \
//!     [--out BENCH_serve.json] [--quiet]
//! ```
//!
//! Reports client-observed push latency (`serve.client_push_secs`, with
//! p50/p99 via the histogram) and aggregate throughput
//! (`serve.throughput_rps`), alongside the server-side registry
//! (`serve_push_secs` histogram, `serve.requests` counter, ...) in the
//! same schema-versioned report `bench_report` writes, so `cad
//! bench-diff` can gate regressions on it.
//!
//! A second phase measures the small-delta push workload — snapshots
//! that only wiggle one edge weight — once per oracle update mode
//! (`rebuild` vs `incremental`, over `--delta-nodes` vertices), and
//! records both latency distributions plus their p99 speedup
//! (`serve.small_delta_speedup_p99`).
//!
//! A third phase measures durability: the same single-session workload
//! against an unjournaled server and a `--journal-dir` server with the
//! default fsync-every-append policy, reporting the p99 cost ratio
//! (`serve.journal_overhead_p99`), then restarts from the journals left
//! behind and reports the replay wall time (`journal.recovery_secs`).

use cad_bench::Args;
use cad_serve::{ServeConfig, Server};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Exact heap accounting for the whole benchmark: the allocator deltas
/// around the push loop become the `mem.*_per_push` columns and the
/// report's `memory` section.
#[global_allocator]
static ALLOC: cad_obs::CountingAlloc = cad_obs::CountingAlloc::new();

/// A keep-alive HTTP/1.1 client on one loopback connection.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let writer = TcpStream::connect(addr).expect("connect");
        // Benchmark latencies must reflect server work, not Nagle /
        // delayed-ACK artifacts on the loopback round trip.
        writer.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(writer.try_clone().expect("clone stream"));
        Client { writer, reader }
    }

    /// One round trip; returns (status, body).
    fn call(&mut self, method: &str, path: &str, body: &[u8]) -> (u16, String) {
        let mut req = format!(
            "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        req.extend_from_slice(body);
        self.writer.write_all(&req).expect("write request");
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).expect("status");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"))
            .parse()
            .expect("numeric status");
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("header");
            if line.trim_end().is_empty() {
                break;
            }
            if let Some(v) = line
                .to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
            {
                content_length = v.parse().expect("length");
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("body");
        (status, String::from_utf8(body).expect("utf-8"))
    }
}

/// Snapshot `i` of the workload: a unit-weight ring over `nodes`
/// vertices plus a cross-ring chord whose weight spikes every fifth
/// instance — enough change to keep the detector scoring real work.
fn snapshot_body(nodes: usize, i: usize) -> String {
    let chord = if i % 5 == 2 { 2.0 } else { 0.2 };
    let mut edges: Vec<String> = (0..nodes)
        .map(|u| format!("[{u}, {}, 1.0]", (u + 1) % nodes))
        .collect();
    edges.push(format!("[0, {}, {chord:?}]", nodes / 2));
    format!(r#"{{"nodes": {nodes}, "edges": [{}]}}"#, edges.join(", "))
}

/// Small-delta snapshot `i`: the same ring topology every push, with
/// only the chord's weight wiggling — the workload incremental updates
/// exist for.
fn small_delta_body(nodes: usize, i: usize) -> String {
    let chord = 0.2 + 0.01 * ((i % 7) as f64);
    let mut edges: Vec<String> = (0..nodes)
        .map(|u| format!("[{u}, {}, 1.0]", (u + 1) % nodes))
        .collect();
    edges.push(format!("[0, {}, {chord:?}]", nodes / 2));
    format!(r#"{{"nodes": {nodes}, "edges": [{}]}}"#, edges.join(", "))
}

/// Drive one session of small-delta pushes under the given update mode
/// and return the client-observed per-push latencies.
fn small_delta_run(
    addr: std::net::SocketAddr,
    nodes: usize,
    pushes: usize,
    mode: &str,
) -> Vec<f64> {
    let mut client = Client::connect(addr);
    let spec = format!(
        r#"{{"nodes": {nodes}, "engine": "exact", "delta": 0.4, "update_mode": "{mode}", "label": "small-delta-{mode}"}}"#
    );
    let (status, body) = client.call("POST", "/v1/sequences", spec.as_bytes());
    assert_eq!(status, 201, "create failed: {body}");
    let id = cad_obs::parse_json(&body)
        .expect("json")
        .get("id")
        .and_then(cad_obs::Json::as_u64)
        .expect("id");
    let path = format!("/v1/sequences/{id}/snapshots");
    let mut latencies = Vec::with_capacity(pushes);
    for i in 0..pushes {
        let body = small_delta_body(nodes, i);
        let (resp, secs) = cad_obs::time_it(|| client.call("POST", &path, body.as_bytes()));
        assert_eq!(resp.0, 200, "push {i} failed: {}", resp.1);
        // The first push has no previous oracle; every later one must
        // take the requested path (no fallback storms on this workload).
        if i > 0 && mode == "incremental" {
            let v = cad_obs::parse_json(&resp.1).expect("json");
            assert_eq!(
                v.get("update_mode").and_then(cad_obs::Json::as_str),
                Some("incremental"),
                "push {i} fell back: {}",
                resp.1
            );
        }
        latencies.push(secs);
    }
    let (status, _) = client.call("DELETE", &format!("/v1/sequences/{id}"), b"");
    assert_eq!(status, 200);
    latencies
}

/// One session of `snapshot_body` pushes from a single client, used by
/// the durability phase on both the unjournaled and journaled servers.
/// Skipping the DELETE leaves the session's journal behind for the
/// recovery measurement.
fn durability_run(
    addr: std::net::SocketAddr,
    nodes: usize,
    pushes: usize,
    delete: bool,
) -> Vec<f64> {
    let mut client = Client::connect(addr);
    let spec =
        format!(r#"{{"nodes": {nodes}, "engine": "exact", "delta": 0.4, "label": "durability"}}"#);
    let (status, body) = client.call("POST", "/v1/sequences", spec.as_bytes());
    assert_eq!(status, 201, "create failed: {body}");
    let id = cad_obs::parse_json(&body)
        .expect("json")
        .get("id")
        .and_then(cad_obs::Json::as_u64)
        .expect("id");
    let path = format!("/v1/sequences/{id}/snapshots");
    let mut latencies = Vec::with_capacity(pushes);
    for i in 0..pushes {
        let body = snapshot_body(nodes, i);
        let (resp, secs) = cad_obs::time_it(|| client.call("POST", &path, body.as_bytes()));
        assert_eq!(resp.0, 200, "push {i} failed: {}", resp.1);
        latencies.push(secs);
    }
    if delete {
        let (status, _) = client.call("DELETE", &format!("/v1/sequences/{id}"), b"");
        assert_eq!(status, 200);
    }
    latencies
}

fn main() {
    let args = Args::from_env();
    args.apply_verbosity();
    let clients = args.get("clients", 4usize);
    let instances = args.get("instances", 40usize);
    let nodes = args.get("nodes", 32usize);
    let workers = args.get("workers", 4usize);
    let delta_nodes = args.get("delta-nodes", 160usize);
    let delta_pushes = args.get("delta-pushes", 30usize);
    let out = args.get(
        "out",
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").to_string(),
    );

    let server = Server::start(ServeConfig {
        workers,
        ..Default::default()
    })
    .expect("start server");
    let addr = server.addr();

    let mem_before = cad_obs::alloc::stats();
    let start = Instant::now();
    let handles: Vec<std::thread::JoinHandle<Vec<f64>>> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                let spec = format!(
                    r#"{{"nodes": {nodes}, "engine": "exact", "delta": 0.4, "label": "bench-{c}"}}"#
                );
                let (status, body) = client.call("POST", "/v1/sequences", spec.as_bytes());
                assert_eq!(status, 201, "create failed: {body}");
                let id = cad_obs::parse_json(&body)
                    .expect("json")
                    .get("id")
                    .and_then(cad_obs::Json::as_u64)
                    .expect("id");
                let path = format!("/v1/sequences/{id}/snapshots");
                let mut latencies = Vec::with_capacity(instances);
                for i in 0..instances {
                    let body = snapshot_body(nodes, i);
                    let (resp, secs) =
                        cad_obs::time_it(|| client.call("POST", &path, body.as_bytes()));
                    assert_eq!(resp.0, 200, "push {i} failed: {}", resp.1);
                    latencies.push(secs);
                }
                let (status, _) = client.call("DELETE", &format!("/v1/sequences/{id}"), b"");
                assert_eq!(status, 200);
                latencies
            })
        })
        .collect();
    let latencies: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let wall = start.elapsed().as_secs_f64();
    let mem_after = cad_obs::alloc::stats();

    // Small-delta phase: one session per update mode, sequentially, so
    // the two latency distributions see identical load (none).
    let rebuild_lat = small_delta_run(addr, delta_nodes, delta_pushes, "rebuild");
    let incr_lat = small_delta_run(addr, delta_nodes, delta_pushes, "incremental");
    // Durability baseline on the same (now otherwise idle) server.
    let plain_lat = durability_run(addr, nodes, instances, true);
    server.drain();

    // Durability phase: the identical workload with a write-ahead log
    // under the default fsync-every-append policy, then a restart that
    // replays the journal left behind.
    let journal_dir =
        std::env::temp_dir().join(format!("cad-bench-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&journal_dir);
    let journaled = Server::start(ServeConfig {
        workers,
        journal_dir: Some(journal_dir.clone()),
        ..Default::default()
    })
    .expect("start journaled server");
    let journal_lat = durability_run(journaled.addr(), nodes, instances, false);
    journaled.drain();
    let (restarted, recovery_secs) = cad_obs::time_it(|| {
        Server::start(ServeConfig {
            workers,
            journal_dir: Some(journal_dir.clone()),
            ..Default::default()
        })
        .expect("restart journaled server")
    });
    restarted.drain();
    let _ = std::fs::remove_dir_all(&journal_dir);

    let pushes = latencies.len();
    let rps = pushes as f64 / wall;
    let client_hist = cad_obs::Histogram::of(latencies.iter().copied());
    let (p50, p99) = (client_hist.p50(), client_hist.p99());

    let mut report = cad_obs::Report::new("bench_serve");
    report.absorb_snapshot(&cad_obs::global().snapshot());
    for (name, value) in cad_obs::counters::snapshot() {
        report.counters.insert(name.to_string(), value);
    }
    for (name, h) in cad_obs::histograms::snapshot() {
        report.histograms.insert(name.to_string(), h);
    }
    for (name, label, cells) in cad_obs::histograms::labeled::snapshot() {
        for (value, h) in cells {
            if h.count > 0 {
                report
                    .histograms
                    .insert(format!("{name}{{{label}={value}}}"), h);
            }
        }
    }
    for (name, value) in cad_obs::gauges::snapshot() {
        report.gauges.insert(name.to_string(), value);
    }
    // The server-side queue-wait distribution, summarized so bench-diff
    // can gate on its mean like any other wall-time metric.
    let queue_wait = cad_obs::histograms::SERVE_QUEUE_WAIT_SECS.snapshot();
    report.summaries.insert(
        "serve.queue_wait_secs".to_string(),
        cad_obs::Summary {
            count: queue_wait.count,
            sum: queue_wait.sum,
            min: queue_wait.min,
            max: queue_wait.max,
        },
    );
    report
        .histograms
        .insert("serve.client_push_secs".to_string(), client_hist);
    report.summaries.insert(
        "serve.client_push_secs".to_string(),
        cad_obs::Summary::of(latencies),
    );
    report.summaries.insert(
        "serve.throughput_rps".to_string(),
        cad_obs::Summary::of([rps]),
    );
    // Allocator pressure of the concurrent push phase, normalized per
    // push so the column is comparable across --clients/--instances.
    // Informational in bench-diff (summaries are not latency-gated).
    let allocs_per_push = (mem_after.allocs - mem_before.allocs) as f64 / pushes.max(1) as f64;
    let bytes_per_push =
        (mem_after.bytes_allocated - mem_before.bytes_allocated) as f64 / pushes.max(1) as f64;
    report.summaries.insert(
        "mem.allocs_per_push".to_string(),
        cad_obs::Summary::of([allocs_per_push]),
    );
    report.summaries.insert(
        "mem.bytes_per_push".to_string(),
        cad_obs::Summary::of([bytes_per_push]),
    );
    // Small-delta phase: drop each run's first push (the cold build both
    // modes share) so the distributions compare steady-state pushes.
    let rebuild_hist = cad_obs::Histogram::of(rebuild_lat.iter().skip(1).copied());
    let incr_hist = cad_obs::Histogram::of(incr_lat.iter().skip(1).copied());
    let speedup = rebuild_hist.p99() / incr_hist.p99().max(f64::MIN_POSITIVE);
    report.histograms.insert(
        "serve.small_delta_rebuild_secs".to_string(),
        rebuild_hist.clone(),
    );
    report.histograms.insert(
        "serve.small_delta_incremental_secs".to_string(),
        incr_hist.clone(),
    );
    report.summaries.insert(
        "serve.small_delta_speedup_p99".to_string(),
        cad_obs::Summary::of([speedup]),
    );
    // Durability phase: journaled-vs-plain push cost and recovery time.
    // Both land as summaries (informational, not latency-gated) because
    // fsync cost is the noisiest thing a CI box measures.
    let plain_hist = cad_obs::Histogram::of(plain_lat.iter().copied());
    let journal_hist = cad_obs::Histogram::of(journal_lat.iter().copied());
    let journal_overhead = journal_hist.p99() / plain_hist.p99().max(f64::MIN_POSITIVE);
    report
        .histograms
        .insert("serve.journal_push_secs".to_string(), journal_hist.clone());
    report.summaries.insert(
        "serve.journal_overhead_p99".to_string(),
        cad_obs::Summary::of([journal_overhead]),
    );
    report.summaries.insert(
        "journal.recovery_secs".to_string(),
        cad_obs::Summary::of([recovery_secs]),
    );
    // Measurement conditions, so bench-diff compares like with like.
    for (key, value) in [
        ("bench.serve_clients", clients),
        ("bench.serve_instances", instances),
        ("bench.serve_nodes", nodes),
        ("bench.serve_workers", workers),
        ("bench.serve_delta_nodes", delta_nodes),
        ("bench.serve_delta_pushes", delta_pushes),
    ] {
        report.counters.insert(key.to_string(), value as u64);
    }
    report.capture_memory();
    std::fs::write(&out, report.to_json_string()).expect("write report");
    println!(
        "wrote {out}: {clients} clients x {instances} pushes over {nodes} nodes -> \
         {rps:.1} req/s, p50 {:.1} ms, p99 {:.1} ms, \
         {allocs_per_push:.0} allocs/push, peak heap {} bytes",
        p50 * 1e3,
        p99 * 1e3,
        cad_obs::alloc::stats().heap_peak_bytes,
    );
    println!(
        "small-delta ({delta_nodes} nodes, {} steady-state pushes/mode): \
         rebuild p99 {:.2} ms, incremental p99 {:.2} ms -> {speedup:.1}x",
        delta_pushes - 1,
        rebuild_hist.p99() * 1e3,
        incr_hist.p99() * 1e3
    );
    println!(
        "durability ({instances} pushes, fsync always): plain p99 {:.2} ms, \
         journaled p99 {:.2} ms -> {journal_overhead:.2}x; recovery {:.1} ms",
        plain_hist.p99() * 1e3,
        journal_hist.p99() * 1e3,
        recovery_secs * 1e3
    );
}
