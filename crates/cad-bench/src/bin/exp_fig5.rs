//! Reproduces **Figure 5** of the paper: AUC of CAD on the §4.1 GMM
//! benchmark as a function of the commute-time embedding dimension `k`.
//!
//! ```text
//! cargo run --release -p cad-bench --bin exp_fig5 -- \
//!     [--n 500] [--trials 5] [--seed 0x6A11]
//! ```
//!
//! Paper finding: "the performance of CAD is invariant to the choice of
//! k for values of k > 10". The reproduction sweeps
//! `k ∈ {2, 5, 10, 25, 50, 100}` with the approximate engine (the exact
//! engine's AUC is printed as the `k = ∞` reference) and asserts the
//! plateau: every `k > 10` lands within a few AUC points of exact.

use cad_bench::{Args, Table};
use cad_commute::{EmbeddingOptions, EngineOptions};
use cad_core::{CadDetector, CadOptions, NodeScorer};
use cad_datasets::{GmmBenchmark, GmmBenchmarkOptions};
use cad_eval::auc;

fn main() {
    let args = Args::from_env();
    args.apply_verbosity();
    let n = args.get("n", 500usize);
    let trials = args.get("trials", 5usize);
    let mut base = GmmBenchmarkOptions::with_n(n);
    base.seed = args.get("seed", base.seed);

    let ks = [2usize, 5, 10, 25, 50, 100];
    let mut mean_auc = vec![0.0f64; ks.len()];
    let mut exact_auc = 0.0f64;

    for trial in 0..trials {
        let mut opts = base.clone();
        opts.seed = base.seed.wrapping_add(trial as u64);
        let bench = GmmBenchmark::generate(&opts).expect("benchmark realization");

        let exact = CadDetector::new(CadOptions {
            engine: EngineOptions::Exact,
            ..Default::default()
        });
        let scores = exact.node_scores(&bench.seq).expect("exact scores");
        exact_auc += auc(&scores[0], &bench.node_labels);

        for (ki, &k) in ks.iter().enumerate() {
            let det = CadDetector::new(CadOptions {
                engine: EngineOptions::Approximate(EmbeddingOptions {
                    k,
                    seed: 0xF165 + trial as u64,
                    ..Default::default()
                }),
                ..Default::default()
            });
            let scores = det.node_scores(&bench.seq).expect("approximate scores");
            mean_auc[ki] += auc(&scores[0], &bench.node_labels);
        }
        cad_obs::progress!("trial {trial} done");
    }
    for a in &mut mean_auc {
        *a /= trials as f64;
    }
    exact_auc /= trials as f64;

    println!("== Figure 5: AUC vs embedding dimension k (n={n}, {trials} trials) ==");
    let mut t = Table::new(&["k", "mean AUC"]);
    for (ki, &k) in ks.iter().enumerate() {
        t.row(&[k.to_string(), format!("{:.3}", mean_auc[ki])]);
    }
    t.row(&["exact".into(), format!("{exact_auc:.3}")]);
    t.print();

    // Reproduction contract: plateau above k = 10.
    for (ki, &k) in ks.iter().enumerate() {
        if k > 10 {
            assert!(
                (mean_auc[ki] - exact_auc).abs() < 0.05,
                "k = {k} should match exact AUC: {:.3} vs {exact_auc:.3}",
                mean_auc[ki]
            );
        }
    }
    assert!(
        exact_auc > 0.75,
        "CAD should be far above chance: {exact_auc:.3}"
    );
    println!("\nfigure-5 shape checks passed (AUC invariant for k > 10)");
}
