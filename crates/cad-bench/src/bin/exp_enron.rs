//! Reproduces **Figure 7** and **Figure 8** of the paper on the
//! Enron-style organizational e-mail simulator (§4.2.1; the real corpus
//! is gated, so a generative stand-in with planted ground truth is used
//! — DESIGN.md §5).
//!
//! ```text
//! cargo run --release -p cad-bench --bin exp_enron -- \
//!     [--l 5] [--act-window 3] [--act-top 10] [--seed ...]
//! ```
//!
//! * Figure 7 — per-transition anomalous node counts for CAD (δ chosen
//!   for `l = 5` nodes/transition on average, as in the paper) and ACT
//!   (`w = 3`, top-5 nodes on its most anomalous transitions), aligned
//!   with the scripted scandal timeline.
//! * Figure 8 — the CEO's monthly e-mail volume histogram and ego-net
//!   size around the eruption month.
//!
//! Reproduction contract: CAD localizes the CEO at the eruption
//! transition (the paper's Kenneth Lay finding), flags the scripted
//! event transitions, stays quiet in calm months — and ACT, while it
//! sees that *something* changed, does not put the CEO in its top-5
//! (the paper's James Steffes anecdote).

use cad_baselines::ActDetector;
use cad_bench::{Args, Table};
use cad_commute::EngineOptions;
use cad_core::{CadDetector, CadOptions, NodeScorer};
use cad_datasets::{EnronSim, EnronSimOptions};

fn main() {
    let args = Args::from_env();
    let l = args.get("l", 5usize);
    let act_window = args.get("act-window", 3usize);
    let act_top = args.get("act-top", 10usize);
    let mut opts = EnronSimOptions::default();
    opts.seed = args.get("seed", opts.seed);

    let sim = EnronSim::generate(&opts).expect("enron simulator");
    let n_trans = sim.seq.n_transitions();

    // CAD with the exact engine (n = 151, same as the paper's choice).
    let cad = CadDetector::new(CadOptions {
        engine: EngineOptions::Exact,
        ..Default::default()
    });
    let detection = cad.detect_top_l(&sim.seq, l).expect("CAD detection");

    // ACT: w = 3; flag the `act_top` transitions with the highest z and
    // report the top-5 nodes on each (the paper's presentation).
    let act = ActDetector::with_window(act_window);
    let z = act
        .transition_scores(&sim.seq)
        .expect("ACT transition scores");
    let act_nodes = act.node_scores(&sim.seq).expect("ACT node scores");
    let mut z_order: Vec<usize> = (0..n_trans).collect();
    z_order.sort_by(|&a, &b| z[b].partial_cmp(&z[a]).expect("finite"));
    let act_flagged: std::collections::HashSet<usize> =
        z_order.iter().take(act_top).copied().collect();

    // ---- Figure 7 ----
    println!("== Figure 7: anomalous nodes per monthly transition ==");
    let mut t = Table::new(&["transition", "CAD nodes", "ACT nodes", "scripted event"]);
    for tr in 0..n_trans {
        let cad_count = detection.transitions[tr].nodes.len();
        let act_count = if act_flagged.contains(&tr) { 5 } else { 0 };
        let event = sim
            .events
            .iter()
            .find(|e| e.month == tr + 1 || e.month + e.duration == tr + 1)
            .map_or(String::new(), |e| e.name.to_string());
        if cad_count > 0 || act_count > 0 || !event.is_empty() {
            t.row(&[
                format!("{tr}->{}", tr + 1),
                cad_count.to_string(),
                act_count.to_string(),
                event,
            ]);
        }
    }
    t.print();

    // ---- Figure 8a: CEO volume histogram ----
    println!("\n== Figure 8a: CEO monthly e-mail volume ==");
    let vol = sim.monthly_volume(EnronSim::CEO);
    let max = vol.iter().cloned().fold(0.0f64, f64::max);
    for (m, v) in vol.iter().enumerate() {
        let bar = "#".repeat((v / max * 50.0).round() as usize);
        println!("month {m:>2} {v:>7.0} {bar}");
    }

    // ---- Figure 8b: CEO ego-net around the eruption ----
    let before = sim.ego_edges(EnronSim::CEO, 32).len();
    let during = sim.ego_edges(EnronSim::CEO, 33).len();
    println!("\n== Figure 8b: CEO ego-network size: month 32 = {before}, month 33 = {during} ==");

    // ---- Reproduction contract ----
    // 1. CAD localizes the CEO at the eruption transition 32 -> 33.
    let eruption = &detection.transitions[32];
    assert!(
        eruption.nodes.contains(&EnronSim::CEO),
        "CAD must flag the CEO at 32->33; flagged {:?}",
        eruption.nodes
    );
    // ...and the CEO carries the largest share of anomalous edges there
    // (the paper's "involved in the highest number of anomalous edges").
    let ceo_edges = eruption
        .edges
        .iter()
        .filter(|e| e.u == EnronSim::CEO || e.v == EnronSim::CEO)
        .count();
    assert!(
        2 * ceo_edges > eruption.edges.len(),
        "CEO should dominate E_32: {ceo_edges} of {}",
        eruption.edges.len()
    );

    // 2. CAD's flagged transitions align with the scripted events.
    let truth: std::collections::HashSet<usize> = sim.anomalous_transitions().into_iter().collect();
    let flagged = detection.anomalous_transitions();
    let hits = flagged.iter().filter(|t| truth.contains(t)).count();
    println!(
        "\nCAD flagged {} transitions, {} of them scripted events (events total {})",
        flagged.len(),
        hits,
        truth.len()
    );
    assert!(
        hits * 2 >= truth.len(),
        "CAD should recover most scripted event transitions"
    );
    // Calm tail (months 41+) stays quiet.
    let tail_nodes: usize = (41..n_trans)
        .map(|t| detection.transitions[t].nodes.len())
        .sum();
    assert!(
        tail_nodes <= 3 * l,
        "calm tail too noisy: {tail_nodes} nodes"
    );

    // 3. ACT's top-5 misses the CEO at the eruption even when flagged.
    let mut act_rank: Vec<usize> = (0..sim.seq.n_nodes()).collect();
    act_rank.sort_by(|&a, &b| {
        act_nodes[32][b]
            .partial_cmp(&act_nodes[32][a])
            .expect("finite")
    });
    let ceo_rank = act_rank.iter().position(|&i| i == EnronSim::CEO).unwrap();
    println!(
        "ACT rank of the CEO at 32->33: {} (CAD rank: top)",
        ceo_rank + 1
    );

    // 4. The Steffes/Lay anecdote: a pure volume surge between existing
    // tight contacts happens at the same month. ACT (volume-driven)
    // ranks the surging executive above the CEO; CAD discounts the
    // surge because its commute-time factor is tiny, and ranks the CEO
    // first by ΔN.
    let cad_nodes = cad.node_scores(&sim.seq).expect("CAD node scores");
    let cad_top = (0..sim.seq.n_nodes())
        .max_by(|&a, &b| {
            cad_nodes[32][a]
                .partial_cmp(&cad_nodes[32][b])
                .expect("finite")
        })
        .unwrap();
    assert_eq!(
        cad_top,
        EnronSim::CEO,
        "CAD's top node at the eruption must be the CEO"
    );
    assert!(
        ceo_rank > 0,
        "ACT should be distracted by the volume-surge executive (Steffes analogue)"
    );
    let act_top = act_rank[0];
    println!(
        "ACT's top node at 32->33 is node {act_top} ({:?}); CAD's is the CEO",
        sim.roles[act_top]
    );

    println!("enron shape checks passed");
}
