//! Reproduces the **§4.2.2 DBLP findings** on the co-authorship
//! simulator (the real corpus is gated — DESIGN.md §5).
//!
//! ```text
//! cargo run --release -p cad-bench --bin exp_dblp -- [--l 20] [--seed ...]
//! ```
//!
//! The three paper anecdotes become assertions:
//!
//! 1. the author who jumps to a *distant* research community (the
//!    Rountev → HPC analogue) is involved in top anomalous edges at the
//!    switch transition;
//! 2. the author who moves to the *adjacent* community (the Orlando
//!    analogue) is found too, with **lower** scores — the paper
//!    explicitly notes the severity ordering;
//! 3. the severed strong tie (the Brdiczka/Mühlhäuser analogue) is a top
//!    anomalous edge at its transition.

use cad_bench::{Args, Table};
use cad_core::{CadDetector, CadOptions};
use cad_datasets::{DblpSim, DblpSimOptions};

fn main() {
    let args = Args::from_env();
    let l = args.get("l", 20usize);
    let mut opts = DblpSimOptions::default();
    opts.seed = args.get("seed", opts.seed);

    let sim = DblpSim::generate(&opts).expect("dblp simulator");
    let det = CadDetector::new(CadOptions::default());
    let detection = det.detect_top_l(&sim.seq, l).expect("CAD detection");

    let (far_author, _, switch_year) = sim.far_switcher;
    let (near_author, _, _) = sim.near_switcher;
    let (sev_a, sev_b, sev_year) = sim.severed;
    let switch_t = switch_year - 1;
    let sev_t = sev_year - 1;

    println!("== §4.2.2: top anomalous edges per yearly transition (l = {l}) ==");
    for tr in &detection.transitions {
        if tr.edges.is_empty() {
            continue;
        }
        println!("-- transition {} -> {} --", tr.t, tr.t + 1);
        let mut t = Table::new(&["edge", "ΔE", "communities"]);
        for e in tr.edges.iter().take(8) {
            t.row(&[
                format!("{} - {}", e.u, e.v),
                format!("{:.2}", e.score),
                format!("{} - {}", sim.community[e.u], sim.community[e.v]),
            ]);
        }
        t.print();
    }

    // ---- Reproduction contract ----
    let switch_edges = &detection.transitions[switch_t].edges;
    let far_score = switch_edges
        .iter()
        .filter(|e| e.u == far_author || e.v == far_author)
        .map(|e| e.score)
        .fold(0.0f64, f64::max);
    let near_score = switch_edges
        .iter()
        .filter(|e| e.u == near_author || e.v == near_author)
        .map(|e| e.score)
        .fold(0.0f64, f64::max);
    assert!(
        far_score > 0.0,
        "far switcher must appear in E_t at the switch transition"
    );
    assert!(
        near_score > 0.0,
        "near switcher must appear in E_t at the switch transition"
    );
    let (far_d, near_d) = sim.switch_distances();
    println!(
        "\nseverity ordering: far switch ({far_d} communities) ΔE = {far_score:.2} \
         vs near switch ({near_d} community) ΔE = {near_score:.2}"
    );
    assert!(
        far_score > near_score,
        "a farther community jump must score higher (paper's Rountev-vs-Orlando note)"
    );

    // The far switcher is involved in the most anomalous edges of the
    // transition (the paper's "involved in the most number of anomalous
    // edges returned in E_t" for Rountev).
    let mut per_node = std::collections::HashMap::<usize, usize>::new();
    for e in switch_edges {
        *per_node.entry(e.u).or_insert(0) += 1;
        *per_node.entry(e.v).or_insert(0) += 1;
    }
    let top_by_count = per_node
        .iter()
        .max_by_key(|(_, &c)| c)
        .map(|(&n, _)| n)
        .unwrap();
    println!("author with most anomalous edges at the switch: {top_by_count} (far switcher = {far_author})");
    assert_eq!(top_by_count, far_author);

    // Severed tie shows up at its transition.
    let severed_found = detection.transitions[sev_t]
        .edges
        .iter()
        .any(|e| (e.u, e.v) == (sev_a.min(sev_b), sev_a.max(sev_b)));
    assert!(
        severed_found,
        "the severed strong tie must be localized at {sev_t}"
    );
    println!("severed tie ({sev_a}, {sev_b}) localized at transition {sev_t}");

    println!("dblp shape checks passed");
}
