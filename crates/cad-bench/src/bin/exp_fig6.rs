//! Reproduces **Figure 6** of the paper: ROC curves and AUC for CAD,
//! ACT, COM, ADJ and CLC on the §4.1 Gaussian-mixture benchmark,
//! averaged over Monte-Carlo realizations.
//!
//! ```text
//! cargo run --release -p cad-bench --bin exp_fig6 -- \
//!     [--n 500] [--trials 20] [--seed 0x6A11] [--skip-clc]
//! ```
//!
//! Paper numbers (n = 2000, 100 trials): AUC CAD 0.88, ADJ 0.53,
//! COM 0.51, ACT 0.53, CLC 0.49. The reproduction target is the shape:
//! CAD far above the rest, the rest hugging the diagonal. Defaults are
//! scaled down for quick runs; pass `--n 2000 --trials 100` for the
//! paper-size configuration.

use cad_baselines::{ActDetector, AdjDetector, ClcDetector, ComDetector};
use cad_bench::eval_loop::evaluate_on_gmm;
use cad_bench::{Args, Table};
use cad_core::{CadDetector, NodeScorer};
use cad_datasets::GmmBenchmarkOptions;

fn main() {
    let args = Args::from_env();
    args.apply_verbosity();
    let n = args.get("n", 500usize);
    let trials = args.get("trials", 20usize);
    let mut opts = GmmBenchmarkOptions::with_n(n);
    opts.seed = args.get("seed", opts.seed);

    let cad = CadDetector::default();
    let act = ActDetector::with_window(1);
    let com = ComDetector::new();
    let adj = AdjDetector::new();
    let clc = ClcDetector::new();
    let mut methods: Vec<&dyn NodeScorer> = vec![&cad, &act, &com, &adj];
    if !args.has("skip-clc") {
        methods.push(&clc); // CLC is all-pairs Dijkstra: slow at large n.
    }

    cad_obs::progress!(
        "running {} methods x {trials} trials at n = {n} ...",
        methods.len()
    );
    let evals = evaluate_on_gmm(&opts, trials, &methods).expect("evaluation");

    println!("== Figure 6: AUC on the GMM benchmark (n={n}, {trials} trials) ==");
    let mut t = Table::new(&["method", "mean AUC", "min", "max", "paper AUC"]);
    let paper = [
        ("CAD", 0.88),
        ("ACT", 0.53),
        ("COM", 0.51),
        ("ADJ", 0.53),
        ("CLC", 0.49),
    ];
    for e in &evals {
        let min = e.aucs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = e.aucs.iter().cloned().fold(0.0f64, f64::max);
        let p = paper
            .iter()
            .find(|(n, _)| *n == e.name)
            .map_or(String::new(), |(_, v)| format!("{v:.2}"));
        t.row(&[
            e.name.clone(),
            format!("{:.3}", e.mean_auc()),
            format!("{min:.3}"),
            format!("{max:.3}"),
            p,
        ]);
    }
    t.print();

    println!("\n== Figure 6: averaged ROC (TPR at FPR grid) ==");
    let grid = [0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9];
    let mut rt = Table::new(&["method", "5%", "10%", "20%", "30%", "50%", "70%", "90%"]);
    for e in &evals {
        let mut row = vec![e.name.clone()];
        for &f in &grid {
            row.push(format!("{:.2}", e.mean_roc.tpr_at(f)));
        }
        rt.row(&row);
    }
    rt.print();

    // Reproduction contract: CAD dominates, baselines near the diagonal.
    let cad_auc = evals.iter().find(|e| e.name == "CAD").unwrap().mean_auc();
    let best_baseline = evals
        .iter()
        .filter(|e| e.name != "CAD")
        .map(|e| e.mean_auc())
        .fold(0.0f64, f64::max);
    println!(
        "\nshape check: CAD AUC {cad_auc:.3} vs best baseline {best_baseline:.3} (paper: 0.88 vs 0.53)"
    );
    assert!(cad_auc > 0.75, "CAD AUC should be far above chance");
    assert!(
        cad_auc > best_baseline + 0.15,
        "CAD must dominate every baseline by a wide margin"
    );
    println!("figure-6 shape checks passed");
}
