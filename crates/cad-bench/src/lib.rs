//! Shared harness utilities for the experiment binaries and benches.
//!
//! Each table/figure of the paper has a dedicated binary under
//! `src/bin/` (see DESIGN.md §4 for the full index); this library holds
//! the pieces they share: a tiny CLI-flag parser, fixed-width table
//! rendering, wall-clock timing helpers and the common
//! detector-evaluation loop used by the quantitative experiments.

#![warn(missing_docs)]

pub mod args;
pub mod eval_loop;
pub mod table;

pub use args::Args;
// Wall-clock helpers live in cad-obs now (shared with the report
// pipeline); the old `cad_bench::time_it` path keeps working.
pub use cad_obs::{time_it, time_mean};
pub use table::Table;
