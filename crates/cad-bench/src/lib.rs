//! Shared harness utilities for the experiment binaries and benches.
//!
//! Each table/figure of the paper has a dedicated binary under
//! `src/bin/` (see DESIGN.md §4 for the full index); this library holds
//! the pieces they share: a tiny CLI-flag parser, fixed-width table
//! rendering, wall-clock timing helpers and the common
//! detector-evaluation loop used by the quantitative experiments.

#![warn(missing_docs)]

pub mod args;
pub mod eval_loop;
pub mod table;
pub mod timing;

pub use args::Args;
pub use table::Table;
pub use timing::time_it;
