//! Fixed-width text tables for experiment output.

/// A simple left-aligned text table printed to stdout.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: append a row of display-able values.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{c:<w$}"));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["method", "auc"]);
        t.row(&["CAD".into(), "0.88".into()]);
        t.row(&["ACT".into(), "0.53".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("method"));
        assert!(lines[2].starts_with("CAD"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        Table::new(&["a", "b"]).row(&["only-one".into()]);
    }

    #[test]
    fn row_display_formats() {
        let mut t = Table::new(&["x", "y"]);
        t.row_display(&[1.5, 2.25]);
        assert!(t.render().contains("1.5"));
    }
}
