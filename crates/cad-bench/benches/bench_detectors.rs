//! Criterion benchmarks behind **Figure 6**: one full node-scoring pass
//! of every detector (CAD, ACT, COM, ADJ, CLC) on a fixed realization of
//! the §4.1 GMM benchmark, plus the score-factorization ablation of
//! §3.4 (the CAD product vs its two factors).

use cad_baselines::{ActDetector, AdjDetector, ClcDetector, ComDetector, ComSupport};
use cad_commute::EngineOptions;
use cad_core::{CadDetector, CadOptions, NodeScorer, ScoreKind};
use cad_datasets::{GmmBenchmark, GmmBenchmarkOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_detectors(c: &mut Criterion) {
    let bench = GmmBenchmark::generate(&GmmBenchmarkOptions::with_n(300)).expect("benchmark");
    let seq = &bench.seq;

    let cad = CadDetector::default();
    let act = ActDetector::with_window(1);
    let com_all = ComDetector::new();
    let com_union = ComDetector::with_support(EngineOptions::default(), ComSupport::EdgeUnion);
    let adj = AdjDetector::new();
    let clc = ClcDetector::new();

    let mut grp = c.benchmark_group("detectors_gmm_n300");
    grp.sample_size(10);
    grp.bench_function("cad", |b| {
        b.iter(|| cad.node_scores(black_box(seq)).expect("cad"))
    });
    grp.bench_function("act", |b| {
        b.iter(|| act.node_scores(black_box(seq)).expect("act"))
    });
    grp.bench_function("com_all_pairs", |b| {
        b.iter(|| com_all.node_scores(black_box(seq)).expect("com"))
    });
    grp.bench_function("com_edge_union", |b| {
        b.iter(|| com_union.node_scores(black_box(seq)).expect("com"))
    });
    grp.bench_function("adj", |b| {
        b.iter(|| adj.node_scores(black_box(seq)).expect("adj"))
    });
    grp.bench_function("clc", |b| {
        b.iter(|| clc.node_scores(black_box(seq)).expect("clc"))
    });
    grp.finish();

    // Ablation: the three score kinds inside the shared pipeline.
    let mut grp = c.benchmark_group("score_kind_ablation_n300");
    grp.sample_size(10);
    for kind in [ScoreKind::Cad, ScoreKind::Adj, ScoreKind::Com] {
        let det = CadDetector::new(CadOptions {
            kind,
            ..Default::default()
        });
        grp.bench_function(kind.name(), move |b| {
            b.iter(|| det.score_sequence(black_box(seq)).expect("scores"))
        });
    }
    grp.finish();
}

criterion_group!(benches, bench_detectors);
criterion_main!(benches);
