//! Micro-benchmarks of the linear-algebra substrate: sparse mat-vec,
//! CSR construction, Jacobi eigendecomposition and the dense Cholesky
//! pseudoinverse route — the primitives every experiment sits on.

use cad_graph::generators::grid::grid_graph;
use cad_graph::generators::random::sparse_random_graph;
use cad_linalg::eig::{jacobi_eigen, sym_eigen, JacobiOptions};
use cad_linalg::pinv::laplacian_pinv_cholesky;
use cad_linalg::CsrMatrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_spmv(c: &mut Criterion) {
    let mut grp = c.benchmark_group("csr_spmv");
    for n in [1_000usize, 10_000, 100_000] {
        let g = sparse_random_graph(n, 4 * n, 1).expect("graph");
        let a = g.adjacency().clone();
        let x = vec![1.0; n];
        let mut y = vec![0.0; n];
        grp.throughput(Throughput::Elements(a.nnz() as u64));
        grp.bench_with_input(BenchmarkId::from_parameter(n), &a, |b, a| {
            b.iter(|| a.matvec_into(black_box(&x), &mut y).expect("spmv"))
        });
    }
    grp.finish();
}

fn bench_csr_construction(c: &mut Criterion) {
    let n = 50_000;
    let g = sparse_random_graph(n, 4 * n, 2).expect("graph");
    let triplets: Vec<(u32, u32, f64)> = g
        .adjacency()
        .iter()
        .map(|(i, j, v)| (i as u32, j as u32, v))
        .collect();
    c.bench_function("csr_from_triplets_200k", |b| {
        b.iter(|| CsrMatrix::from_triplets(n, n, black_box(&triplets)))
    });
}

fn bench_dense_eigen_and_pinv(c: &mut Criterion) {
    let g = grid_graph(12, 12, 1.0).expect("grid");
    let l = g.laplacian_dense();
    let mut grp = c.benchmark_group("dense_n144");
    grp.sample_size(10);
    grp.bench_function("jacobi_eigen", |b| {
        b.iter(|| jacobi_eigen(black_box(&l), JacobiOptions::default()).expect("eigen"))
    });
    grp.bench_function("householder_ql_eigen", |b| {
        b.iter(|| sym_eigen(black_box(&l)).expect("eigen"))
    });
    grp.bench_function("laplacian_pinv_cholesky", |b| {
        b.iter(|| laplacian_pinv_cholesky(black_box(&l)).expect("pinv"))
    });
    grp.finish();
}

criterion_group!(
    benches,
    bench_spmv,
    bench_csr_construction,
    bench_dense_eigen_and_pinv
);
criterion_main!(benches);
