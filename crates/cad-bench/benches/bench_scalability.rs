//! Criterion benchmark behind the **§4.1.3 scalability table**: CAD's
//! per-transition cost on sparse random graphs (`m = n`) across sizes,
//! with the spanning-tree-preconditioned embedding (k = 10, as in the
//! paper's scalability runs). The standalone `exp_scalability` binary
//! prints the full five-method table; this bench tracks the CAD curve
//! with Criterion statistics for regression detection.

use cad_commute::{EmbeddingOptions, EngineOptions};
use cad_core::{CadDetector, CadOptions, NodeScorer};
use cad_graph::generators::random::sparse_random_graph;
use cad_graph::{GraphSequence, WeightedGraph};
use cad_linalg::solve::laplacian::PrecondKind;
use cad_linalg::solve::{CgOptions, LaplacianSolverOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn workload(n: usize) -> GraphSequence {
    let g0 = sparse_random_graph(n, n, 42).expect("graph");
    let mut edges: Vec<(usize, usize, f64)> = g0.edges().collect();
    // Perturb 1% of edges deterministically.
    for (i, e) in edges.iter_mut().enumerate() {
        if i % 100 == 0 {
            e.2 = (e.2 * 1.7).min(1.0);
        }
    }
    let g1 = WeightedGraph::from_edges(n, &edges).expect("edited graph");
    GraphSequence::new(vec![g0, g1]).expect("sequence")
}

/// A `t`-instance sequence of lightly drifting sparse graphs — the
/// engine-build parallelism workload (one oracle per instance).
fn drifting_workload(n: usize, t: usize) -> GraphSequence {
    let mut graphs = Vec::with_capacity(t);
    for step in 0..t {
        let g = sparse_random_graph(n, n, 42).expect("graph");
        let mut edges: Vec<(usize, usize, f64)> = g.edges().collect();
        for (i, e) in edges.iter_mut().enumerate() {
            if (i + step) % 50 == 0 {
                e.2 = (e.2 * (1.1 + 0.05 * step as f64)).min(1.0);
            }
        }
        graphs.push(WeightedGraph::from_edges(n, &edges).expect("edited graph"));
    }
    GraphSequence::new(graphs).expect("sequence")
}

fn bench_cad_scaling(c: &mut Criterion) {
    let det = CadDetector::new(CadOptions {
        engine: EngineOptions::Approximate(EmbeddingOptions {
            k: 10,
            solver: LaplacianSolverOptions {
                precond: PrecondKind::SpanningTree,
                cg: CgOptions {
                    tol: 1e-4,
                    max_iter: None,
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        }),
        ..Default::default()
    });
    let mut grp = c.benchmark_group("cad_scaling_m_eq_n");
    grp.sample_size(10);
    for n in [1_000usize, 3_000, 10_000] {
        let seq = workload(n);
        grp.throughput(Throughput::Elements(n as u64));
        grp.bench_with_input(BenchmarkId::from_parameter(n), &seq, |b, seq| {
            b.iter(|| det.node_scores(seq).expect("scores"))
        });
    }
    grp.finish();
}

/// Serial vs parallel per-instance oracle construction: the same
/// 16-instance sequence scored with 1/2/4/8 worker threads. Output is
/// bit-identical across rows (see `tests/parallel_equivalence.rs`);
/// only wall-clock should move. The closing speedup summary makes the
/// parallel payoff (or its absence on core-starved machines) explicit.
fn bench_engine_build_threads(c: &mut Criterion) {
    let engine = EngineOptions::Approximate(EmbeddingOptions {
        k: 10,
        solver: LaplacianSolverOptions {
            precond: PrecondKind::SpanningTree,
            cg: CgOptions {
                tol: 1e-4,
                max_iter: None,
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    });
    let seq = drifting_workload(1_000, 16);
    let mut grp = c.benchmark_group("engine_build_threads_16x1000");
    grp.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let det = CadDetector::new(CadOptions {
            engine,
            threads,
            ..Default::default()
        });
        grp.bench_with_input(BenchmarkId::from_parameter(threads), &seq, |b, seq| {
            b.iter(|| det.score_sequence(seq).expect("scores"))
        });
    }
    grp.finish();

    // Explicit speedup summary (criterion rows only show means).
    let time_once = |threads: usize| {
        let det = CadDetector::new(CadOptions {
            engine,
            threads,
            ..Default::default()
        });
        det.score_sequence(&seq).expect("warmup");
        let start = std::time::Instant::now();
        for _ in 0..3 {
            criterion::black_box(det.score_sequence(&seq).expect("scores"));
        }
        start.elapsed().as_secs_f64() / 3.0
    };
    let base = time_once(1);
    println!(
        "engine build+score, 16 instances of n=1000 (host has {} cores):",
        std::thread::available_parallelism().map_or(1, |c| c.get())
    );
    println!("  threads=1  {:.3}s  (baseline)", base);
    for threads in [2usize, 4, 8] {
        let t = time_once(threads);
        println!("  threads={threads}  {:.3}s  speedup {:.2}x", t, base / t);
    }
}

criterion_group!(benches, bench_cad_scaling, bench_engine_build_threads);
criterion_main!(benches);
