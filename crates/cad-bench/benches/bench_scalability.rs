//! Criterion benchmark behind the **§4.1.3 scalability table**: CAD's
//! per-transition cost on sparse random graphs (`m = n`) across sizes,
//! with the spanning-tree-preconditioned embedding (k = 10, as in the
//! paper's scalability runs). The standalone `exp_scalability` binary
//! prints the full five-method table; this bench tracks the CAD curve
//! with Criterion statistics for regression detection.

use cad_commute::{EmbeddingOptions, EngineOptions};
use cad_core::{CadDetector, CadOptions, NodeScorer};
use cad_graph::generators::random::sparse_random_graph;
use cad_graph::{GraphSequence, WeightedGraph};
use cad_linalg::solve::laplacian::PrecondKind;
use cad_linalg::solve::{CgOptions, LaplacianSolverOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn workload(n: usize) -> GraphSequence {
    let g0 = sparse_random_graph(n, n, 42).expect("graph");
    let mut edges: Vec<(usize, usize, f64)> = g0.edges().collect();
    // Perturb 1% of edges deterministically.
    for (i, e) in edges.iter_mut().enumerate() {
        if i % 100 == 0 {
            e.2 = (e.2 * 1.7).min(1.0);
        }
    }
    let g1 = WeightedGraph::from_edges(n, &edges).expect("edited graph");
    GraphSequence::new(vec![g0, g1]).expect("sequence")
}

fn bench_cad_scaling(c: &mut Criterion) {
    let det = CadDetector::new(CadOptions {
        engine: EngineOptions::Approximate(EmbeddingOptions {
            k: 10,
            solver: LaplacianSolverOptions {
                precond: PrecondKind::SpanningTree,
                cg: CgOptions { tol: 1e-4, max_iter: None },
                ..Default::default()
            },
            ..Default::default()
        }),
        ..Default::default()
    });
    let mut grp = c.benchmark_group("cad_scaling_m_eq_n");
    grp.sample_size(10);
    for n in [1_000usize, 3_000, 10_000] {
        let seq = workload(n);
        grp.throughput(Throughput::Elements(n as u64));
        grp.bench_with_input(BenchmarkId::from_parameter(n), &seq, |b, seq| {
            b.iter(|| det.node_scores(seq).expect("scores"))
        });
    }
    grp.finish();
}

criterion_group!(benches, bench_cad_scaling);
criterion_main!(benches);
