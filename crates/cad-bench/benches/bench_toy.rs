//! Criterion micro-benchmarks behind **Tables 1–2 / Figure 3**: the full
//! CAD pipeline on the 17-node toy example with exact commute times, and
//! the ACT comparison. Small and fast — this is the "paper §3.5" path.

use cad_baselines::ActDetector;
use cad_commute::EngineOptions;
use cad_core::{CadDetector, CadOptions, NodeScorer};
use cad_graph::generators::toy::toy_example;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_toy_pipeline(c: &mut Criterion) {
    let toy = toy_example();
    let det = CadDetector::new(CadOptions {
        engine: EngineOptions::Exact,
        ..Default::default()
    });
    let act = ActDetector::with_window(1);

    let mut g = c.benchmark_group("toy");
    g.bench_function("cad_exact_scores", |b| {
        b.iter(|| det.score_sequence(black_box(&toy.seq)).expect("scores"))
    });
    g.bench_function("cad_detect_top_l", |b| {
        b.iter(|| det.detect_top_l(black_box(&toy.seq), 6).expect("detection"))
    });
    g.bench_function("act_node_scores", |b| {
        b.iter(|| act.node_scores(black_box(&toy.seq)).expect("scores"))
    });
    g.bench_function("generate", |b| b.iter(toy_example));
    g.finish();
}

criterion_group!(benches, bench_toy_pipeline);
criterion_main!(benches);
