//! Ablation benchmark called out in DESIGN.md: the Laplacian-solver
//! preconditioners (none / Jacobi / IC(0) / spanning tree) across the
//! two graph families that stress them differently — kernel-similarity
//! cluster graphs (well-conditioned, diagonal methods fine) and
//! threshold-regime sparse random graphs (filament-heavy, where the tree
//! preconditioner substitutes for the paper's Spielman–Teng solver).

use cad_graph::generators::gmm::{sample_gmm, similarity_graph, GmmParams};
use cad_graph::generators::random::sparse_random_graph;
use cad_graph::WeightedGraph;
use cad_linalg::solve::laplacian::PrecondKind;
use cad_linalg::solve::{CgOptions, LaplacianSolver, LaplacianSolverOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn solve_with(g: &WeightedGraph, precond: PrecondKind) {
    let l = g.laplacian();
    let solver = LaplacianSolver::new(
        &l,
        LaplacianSolverOptions {
            precond,
            cg: CgOptions {
                tol: 1e-6,
                max_iter: None,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("solver setup");
    // A mean-free RHS similar to the embedding's incidence rows.
    let n = g.n_nodes();
    let b: Vec<f64> = (0..n)
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    let x = solver.solve(&b).expect("solve");
    std::hint::black_box(x);
}

fn bench_preconditioners(c: &mut Criterion) {
    let (pts, _) = sample_gmm(600, &GmmParams::default(), 3);
    let cluster = similarity_graph(&pts, 1e-3).expect("cluster graph");
    let random = sparse_random_graph(5_000, 5_000, 3).expect("random graph");

    let kinds = [
        ("none", PrecondKind::None),
        ("jacobi", PrecondKind::Jacobi),
        ("ic0", PrecondKind::IncompleteCholesky),
        ("tree", PrecondKind::SpanningTree),
    ];

    let mut grp = c.benchmark_group("laplacian_solve_cluster_n600");
    grp.sample_size(10);
    for (name, kind) in kinds {
        grp.bench_with_input(BenchmarkId::from_parameter(name), &kind, |b, &kind| {
            b.iter(|| solve_with(&cluster, kind))
        });
    }
    grp.finish();

    let mut grp = c.benchmark_group("laplacian_solve_random_n5000");
    grp.sample_size(10);
    for (name, kind) in kinds {
        grp.bench_with_input(BenchmarkId::from_parameter(name), &kind, |b, &kind| {
            b.iter(|| solve_with(&random, kind))
        });
    }
    grp.finish();
}

criterion_group!(benches, bench_preconditioners);
criterion_main!(benches);
