//! Criterion benchmarks behind **Figure 5**: exact vs approximate
//! commute-time computation, and the approximate engine's cost as a
//! function of the embedding dimension `k` (the paper's `k_RP`).

use cad_commute::{CommuteEmbedding, EmbeddingOptions, ExactCommute};
use cad_graph::generators::gmm::{sample_gmm, similarity_graph, GmmParams};
use cad_graph::WeightedGraph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn kernel_graph(n: usize) -> WeightedGraph {
    let (pts, _) = sample_gmm(n, &GmmParams::default(), 7);
    similarity_graph(&pts, 1e-3).expect("kernel graph")
}

fn bench_exact_vs_approx(c: &mut Criterion) {
    let g = kernel_graph(300);
    let mut grp = c.benchmark_group("commute_exact_vs_approx_n300");
    grp.sample_size(10);
    grp.bench_function("exact_pinv", |b| {
        b.iter(|| ExactCommute::compute(black_box(&g)).expect("exact"))
    });
    grp.bench_function("embedding_k50", |b| {
        b.iter(|| {
            CommuteEmbedding::compute(
                black_box(&g),
                &EmbeddingOptions {
                    k: 50,
                    ..Default::default()
                },
            )
            .expect("embedding")
        })
    });
    grp.finish();
}

fn bench_embedding_vs_k(c: &mut Criterion) {
    let g = kernel_graph(400);
    let mut grp = c.benchmark_group("embedding_vs_k_n400");
    grp.sample_size(10);
    for k in [5usize, 10, 25, 50, 100] {
        grp.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                CommuteEmbedding::compute(
                    &g,
                    &EmbeddingOptions {
                        k,
                        ..Default::default()
                    },
                )
                .expect("embedding")
            })
        });
    }
    grp.finish();
}

fn bench_embedding_threads(c: &mut Criterion) {
    let g = kernel_graph(400);
    let mut grp = c.benchmark_group("embedding_threads_n400_k50");
    grp.sample_size(10);
    for threads in [1usize, 2, 4] {
        grp.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    CommuteEmbedding::compute(
                        &g,
                        &EmbeddingOptions {
                            k: 50,
                            threads,
                            ..Default::default()
                        },
                    )
                    .expect("embedding")
                })
            },
        );
    }
    grp.finish();
}

fn bench_query_cost(c: &mut Criterion) {
    let g = kernel_graph(300);
    let exact = ExactCommute::compute(&g).expect("exact");
    let emb = CommuteEmbedding::compute(
        &g,
        &EmbeddingOptions {
            k: 50,
            ..Default::default()
        },
    )
    .expect("embedding");
    let mut grp = c.benchmark_group("commute_query");
    grp.bench_function("exact_lookup", |b| {
        b.iter(|| black_box(exact.commute_distance(black_box(10), black_box(200))))
    });
    grp.bench_function("embedding_k50_distance", |b| {
        b.iter(|| black_box(emb.commute_distance(black_box(10), black_box(200))))
    });
    grp.finish();
}

criterion_group!(
    benches,
    bench_exact_vs_approx,
    bench_embedding_vs_k,
    bench_embedding_threads,
    bench_query_cost
);
criterion_main!(benches);
