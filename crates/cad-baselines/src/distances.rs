//! Whole-graph distance measures and distance-series event detection.
//!
//! §2.4.2 of the paper lists existing graph distances — maximum common
//! subgraph, graph edit distance, modality distance, spectral distance —
//! and observes that none of them decompose edge-wise (condition (2)),
//! so they can *detect* an anomalous transition but cannot *localize*
//! the responsible edges. This module implements the two that are
//! well-defined on fixed-vertex weighted graphs:
//!
//! * [`edit_distance`] — weighted graph edit distance for a shared
//!   vertex set: total weight-change mass `Σ |ΔA|`;
//! * [`spectral_distance`] — `‖λ(A_t) − λ(A_{t+1})‖₂` over the top `k`
//!   adjacency eigenvalues (Jovanović–Stanić style), computed with the
//!   Lanczos solver;
//!
//! plus [`DistanceSeriesDetector`], the Pincombe-style event detector
//! the paper cites as [18]: track a graph-distance time series and score
//! transitions by AR(1) residual z-scores. Its output is one score per
//! *transition* — there is structurally no way to point at edges, which
//! is the paper's §1 motivation for CAD in executable form.

use crate::Result;
use cad_graph::{GraphError, GraphSequence, WeightedGraph};
use cad_linalg::eig::{lanczos_extremal, LanczosOptions, Which};

/// Weighted graph edit distance over a fixed vertex set: the minimal
/// total weight change turning one graph into the other, which for
/// identified vertices is exactly `Σ_{i<j} |A(i,j) − B(i,j)|`.
pub fn edit_distance(a: &WeightedGraph, b: &WeightedGraph) -> Result<f64> {
    if a.n_nodes() != b.n_nodes() {
        return Err(GraphError::MixedNodeCounts {
            expected: a.n_nodes(),
            found: b.n_nodes(),
            at: 1,
        });
    }
    let diff = b
        .adjacency()
        .linear_combination(1.0, a.adjacency(), -1.0)
        .map_err(GraphError::from)?;
    Ok(diff.iter_upper().map(|(_, _, v)| v.abs()).sum())
}

/// Spectral distance: Euclidean distance between the top-`k` adjacency
/// eigenvalues of the two graphs (padded with zeros when a spectrum is
/// shorter).
pub fn spectral_distance(a: &WeightedGraph, b: &WeightedGraph, k: usize) -> Result<f64> {
    if a.n_nodes() != b.n_nodes() {
        return Err(GraphError::MixedNodeCounts {
            expected: a.n_nodes(),
            found: b.n_nodes(),
            at: 1,
        });
    }
    let spectrum = |g: &WeightedGraph| -> Result<Vec<f64>> {
        let kk = k.min(g.n_nodes().saturating_sub(1)).max(1);
        let (vals, _) = lanczos_extremal(
            g.adjacency(),
            kk,
            Which::Largest,
            &[],
            LanczosOptions::default(),
        )
        .map_err(GraphError::from)?;
        Ok(vals)
    };
    let (sa, sb) = (spectrum(a)?, spectrum(b)?);
    let len = sa.len().max(sb.len());
    let get = |s: &[f64], i: usize| s.get(i).copied().unwrap_or(0.0);
    Ok((0..len)
        .map(|i| (get(&sa, i) - get(&sb, i)).powi(2))
        .sum::<f64>()
        .sqrt())
}

/// Which whole-graph distance the series detector tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesDistance {
    /// [`edit_distance`].
    Edit,
    /// [`spectral_distance`] with the given `k`.
    Spectral(usize),
}

/// Pincombe-style event detection: a graph-distance time series with
/// AR(1)-residual z-scores.
///
/// Produces one score per transition and *nothing else* — no edges, no
/// nodes. This is the localization gap the paper's introduction calls
/// out in the event-detection family.
#[derive(Debug, Clone, Copy)]
pub struct DistanceSeriesDetector {
    /// Distance tracked.
    pub distance: SeriesDistance,
}

impl DistanceSeriesDetector {
    /// Create a detector over the chosen distance.
    pub fn new(distance: SeriesDistance) -> Self {
        DistanceSeriesDetector { distance }
    }

    /// The raw distance series `d(G_t, G_{t+1})`, one value per
    /// transition.
    pub fn distance_series(&self, seq: &GraphSequence) -> Result<Vec<f64>> {
        seq.transitions()
            .map(|(_, g0, g1)| match self.distance {
                SeriesDistance::Edit => edit_distance(g0, g1),
                SeriesDistance::Spectral(k) => spectral_distance(g0, g1, k),
            })
            .collect()
    }

    /// AR(1)-residual z-scores of the distance series: fit
    /// `x_t − μ ≈ φ (x_{t−1} − μ)` by the lag-1 autocorrelation and
    /// score each transition by its standardized residual magnitude.
    pub fn event_scores(&self, seq: &GraphSequence) -> Result<Vec<f64>> {
        let x = self.distance_series(seq)?;
        Ok(ar1_residual_zscores(&x))
    }
}

/// Standardized AR(1) residuals of a series (first element scored
/// against the mean). Constant series score zero everywhere.
pub fn ar1_residual_zscores(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let mean = x.iter().sum::<f64>() / n as f64;
    let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
    if var <= f64::MIN_POSITIVE {
        return vec![0.0; n];
    }
    // Lag-1 autocorrelation (Yule–Walker for AR(1)).
    let cov1 = x
        .windows(2)
        .map(|w| (w[0] - mean) * (w[1] - mean))
        .sum::<f64>()
        / n as f64;
    let phi = (cov1 / var).clamp(-0.99, 0.99);
    let residual: Vec<f64> = (0..n)
        .map(|t| {
            if t == 0 {
                x[0] - mean
            } else {
                (x[t] - mean) - phi * (x[t - 1] - mean)
            }
        })
        .collect();
    let rmean = residual.iter().sum::<f64>() / n as f64;
    let rvar = residual
        .iter()
        .map(|v| (v - rmean) * (v - rmean))
        .sum::<f64>()
        / n as f64;
    let rstd = rvar.sqrt().max(f64::MIN_POSITIVE);
    residual.iter().map(|v| (v - rmean).abs() / rstd).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(edges: &[(usize, usize, f64)]) -> WeightedGraph {
        WeightedGraph::from_edges(5, edges).unwrap()
    }

    #[test]
    fn edit_distance_is_total_weight_change() {
        let a = g(&[(0, 1, 2.0), (1, 2, 1.0)]);
        let b = g(&[(0, 1, 3.0), (2, 3, 0.5)]);
        // |3−2| + |0−1| + |0.5−0| = 2.5.
        assert!((edit_distance(&a, &b).unwrap() - 2.5).abs() < 1e-12);
        assert_eq!(edit_distance(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn spectral_distance_zero_for_isomorphic_relabeling() {
        // Same structure, different labels: spectra coincide.
        let a = g(&[(0, 1, 2.0), (1, 2, 2.0)]);
        let b = g(&[(2, 3, 2.0), (3, 4, 2.0)]);
        let d = spectral_distance(&a, &b, 3).unwrap();
        assert!(d < 1e-8, "{d}");
        // Edit distance, in contrast, sees the relabeling as change.
        assert!(edit_distance(&a, &b).unwrap() > 0.0);
    }

    #[test]
    fn spectral_distance_detects_weight_change() {
        let a = g(&[(0, 1, 2.0)]);
        let b = g(&[(0, 1, 4.0)]);
        // Top eigenvalues: 2 vs 4.
        let d = spectral_distance(&a, &b, 1).unwrap();
        assert!((d - 2.0).abs() < 1e-8, "{d}");
    }

    #[test]
    fn mismatched_sizes_rejected() {
        let a = g(&[(0, 1, 1.0)]);
        let b = WeightedGraph::from_edges(3, &[(0, 1, 1.0)]).unwrap();
        assert!(edit_distance(&a, &b).is_err());
        assert!(spectral_distance(&a, &b, 2).is_err());
    }

    #[test]
    fn series_detector_spikes_at_the_event() {
        // Mostly-stable sequence with one restructuring transition.
        let stable = g(&[(0, 1, 3.0), (1, 2, 3.0), (3, 4, 3.0)]);
        let mut graphs = vec![stable.clone(); 6];
        graphs[3] = g(&[(0, 1, 3.0), (1, 2, 3.0), (3, 4, 3.0), (0, 4, 2.5)]);
        let seq = GraphSequence::new(graphs).unwrap();
        for dist in [SeriesDistance::Edit, SeriesDistance::Spectral(3)] {
            let det = DistanceSeriesDetector::new(dist);
            let z = det.event_scores(&seq).unwrap();
            // Transitions 2→3 and 3→4 carry the change.
            let top = (0..z.len())
                .max_by(|&a, &b| z[a].partial_cmp(&z[b]).unwrap())
                .unwrap();
            assert!(top == 2 || top == 3, "{dist:?}: top at {top}, z = {z:?}");
        }
    }

    #[test]
    fn constant_series_scores_zero() {
        assert_eq!(ar1_residual_zscores(&[2.0, 2.0, 2.0]), vec![0.0; 3]);
        assert!(ar1_residual_zscores(&[]).is_empty());
    }

    #[test]
    fn ar1_fits_autocorrelated_noise() {
        // A strongly autocorrelated ramp is "expected" under AR(1); a
        // spike is not. The spike must out-score the ramp points.
        let mut x: Vec<f64> = (0..20).map(|i| i as f64 * 0.1).collect();
        x[10] += 5.0;
        let z = ar1_residual_zscores(&x);
        let top = (0..z.len())
            .max_by(|&a, &b| z[a].partial_cmp(&z[b]).unwrap())
            .unwrap();
        assert!(top == 10 || top == 11, "spike not found: {top}");
    }
}
