//! ADJ — adjacency-difference ablation (paper §3.4).
//!
//! Scores every changed edge by `|A_{t+1}(i,j) − A_t(i,j)|` alone. It
//! satisfies the decomposability condition (2) and is extremely fast,
//! but cannot tell a benign weight jitter between tightly-coupled nodes
//! from a structurally significant change of the same magnitude — the
//! failure mode CAD's commute-time factor fixes.

use crate::Result;
use cad_core::{CadDetector, CadOptions, NodeScorer, ScoreKind};
use cad_graph::GraphSequence;

/// The ADJ baseline. A thin wrapper over the CAD pipeline with the
/// commute-time factor disabled, so thresholding and node aggregation
/// behave identically to CAD.
#[derive(Debug, Clone, Default)]
pub struct AdjDetector {
    inner: CadDetector,
}

impl AdjDetector {
    /// Create the ADJ detector.
    pub fn new() -> Self {
        AdjDetector {
            inner: CadDetector::new(CadOptions {
                kind: ScoreKind::Adj,
                ..Default::default()
            }),
        }
    }

    /// Access the underlying pipeline (for thresholded detection).
    pub fn pipeline(&self) -> &CadDetector {
        &self.inner
    }
}

impl NodeScorer for AdjDetector {
    fn name(&self) -> &'static str {
        "ADJ"
    }

    fn node_scores(&self, seq: &GraphSequence) -> Result<Vec<Vec<f64>>> {
        self.inner.node_scores(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cad_graph::WeightedGraph;

    #[test]
    fn scores_by_weight_change_only() {
        // Edge {0,1} changes by 2.0, edge {2,3} by 0.5: ADJ node scores
        // must reflect exactly those magnitudes regardless of structure.
        let g0 = WeightedGraph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let g1 = WeightedGraph::from_edges(4, &[(0, 1, 3.0), (1, 2, 1.0), (2, 3, 1.5)]).unwrap();
        let seq = GraphSequence::new(vec![g0, g1]).unwrap();
        let ns = AdjDetector::new().node_scores(&seq).unwrap();
        assert_eq!(ns[0], vec![2.0, 2.0, 0.5, 0.5]);
    }

    #[test]
    fn name_is_adj() {
        assert_eq!(AdjDetector::new().name(), "ADJ");
    }
}
