//! Baseline detectors compared against CAD in the paper.
//!
//! * [`act::ActDetector`] — Ide & Kashima's activity-vector method
//!   (KDD'04): event detection from principal eigenvectors of the
//!   adjacency matrices, plus the node-attribution extension of Akoglu &
//!   Faloutsos used by the paper for a localization comparison.
//! * [`adj::AdjDetector`] / [`com::ComDetector`] — the two single-factor
//!   ablations of the CAD score (paper §3.4): weight change only and
//!   commute-time change only.
//! * [`clc::ClcDetector`] — closeness-centrality change (paper §4).
//! * [`distances`] — whole-graph distances (edit, spectral) and the
//!   Pincombe-style distance-series event detector the paper cites as
//!   the localization-free family (§1, §2.4.2).
//!
//! All baselines implement [`cad_core::NodeScorer`], so ROC evaluation
//! and the experiment binaries treat them interchangeably with CAD.

#![warn(missing_docs)]

pub mod act;
pub mod adj;
pub mod clc;
pub mod com;
pub mod distances;

pub use act::{ActDetector, ActOptions};
pub use adj::AdjDetector;
pub use clc::ClcDetector;
pub use com::{ComDetector, ComSupport};
pub use distances::{edit_distance, spectral_distance, DistanceSeriesDetector, SeriesDistance};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, cad_graph::GraphError>;
