//! CLC — closeness-centrality change (paper §4).
//!
//! Scores node `i` at transition `t → t+1` by
//! `|cc_{t+1}(i) − cc_t(i)|` where `cc` is closeness centrality on the
//! similarity graph (edge length `1/weight`). A natural "commonplace"
//! baseline: centrality shifts under structural change, but — like ACT —
//! it moves for every node *affected* by a change, not just the
//! responsible ones, and its all-pairs shortest paths make it expensive
//! on dense graphs (the paper's §4.1.3 observes exactly that).

use crate::Result;
use cad_core::NodeScorer;
use cad_graph::algo::closeness_centrality;
use cad_graph::GraphSequence;

/// The CLC baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClcDetector;

impl ClcDetector {
    /// Create the CLC detector.
    pub fn new() -> Self {
        ClcDetector
    }

    /// Closeness centralities of every instance.
    pub fn centralities(&self, seq: &GraphSequence) -> Vec<Vec<f64>> {
        seq.graphs().iter().map(closeness_centrality).collect()
    }
}

impl NodeScorer for ClcDetector {
    fn name(&self) -> &'static str {
        "CLC"
    }

    fn node_scores(&self, seq: &GraphSequence) -> Result<Vec<Vec<f64>>> {
        let cc = self.centralities(seq);
        Ok(cc
            .windows(2)
            .map(|w| w[0].iter().zip(&w[1]).map(|(a, b)| (b - a).abs()).collect())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cad_graph::WeightedGraph;

    #[test]
    fn unchanged_graph_scores_zero() {
        let g = WeightedGraph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let seq = GraphSequence::new(vec![g.clone(), g]).unwrap();
        let ns = ClcDetector::new().node_scores(&seq).unwrap();
        assert!(ns[0].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn bridge_change_moves_many_centralities() {
        // Path 0-1-2-3; the 1-2 edge weakens: every node's closeness
        // changes, illustrating CLC's affected-vs-responsible confusion.
        let g0 = WeightedGraph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let g1 = WeightedGraph::from_edges(4, &[(0, 1, 1.0), (1, 2, 0.1), (2, 3, 1.0)]).unwrap();
        let seq = GraphSequence::new(vec![g0, g1]).unwrap();
        let ns = ClcDetector::new().node_scores(&seq).unwrap();
        assert!(ns[0].iter().all(|&v| v > 0.0), "{:?}", ns[0]);
    }

    #[test]
    fn name_is_clc() {
        assert_eq!(ClcDetector::new().name(), "CLC");
    }
}
