//! CLC — closeness-centrality change (paper §4).
//!
//! Scores node `i` at transition `t → t+1` by
//! `|cc_{t+1}(i) − cc_t(i)|` where `cc` is closeness centrality on the
//! similarity graph (edge length `1/weight`). A natural "commonplace"
//! baseline: centrality shifts under structural change, but — like ACT —
//! it moves for every node *affected* by a change, not just the
//! responsible ones, and its all-pairs shortest paths make it expensive
//! on dense graphs (the paper's §4.1.3 observes exactly that).
//!
//! The distance table comes from the shared
//! [`cad_commute::DistanceOracle`] factory (the shortest-path backend) —
//! this crate keeps no distance-table implementation of its own; only
//! the Wasserman–Faust normalization lives here.

use crate::Result;
use cad_commute::{CommuteTimeEngine, DistanceOracle, EngineOptions};
use cad_core::NodeScorer;
use cad_graph::GraphSequence;

/// The CLC baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClcDetector;

/// Wasserman–Faust closeness `cc(i) = (r/(n−1)) · (r/Σ d(i,j))` over the
/// `r` finite-distance peers of `i` (isolated nodes score 0), computed
/// from any [`DistanceOracle`].
fn closeness_from_oracle(oracle: &dyn DistanceOracle) -> Vec<f64> {
    let n = oracle.n_nodes();
    if n <= 1 {
        return vec![0.0; n];
    }
    (0..n)
        .map(|i| {
            let mut sum = 0.0;
            let mut reachable = 0usize;
            for j in 0..n {
                let d = oracle.distance(i, j);
                if j != i && d.is_finite() {
                    sum += d;
                    reachable += 1;
                }
            }
            if reachable == 0 || sum == 0.0 {
                0.0
            } else {
                let r = reachable as f64;
                (r / (n as f64 - 1.0)) * (r / sum)
            }
        })
        .collect()
}

impl ClcDetector {
    /// Create the CLC detector.
    pub fn new() -> Self {
        ClcDetector
    }

    /// Closeness centralities of every instance.
    pub fn centralities(&self, seq: &GraphSequence) -> Result<Vec<Vec<f64>>> {
        seq.graphs()
            .iter()
            .map(|g| {
                let oracle = CommuteTimeEngine::compute(g, &EngineOptions::ShortestPath)?;
                Ok(closeness_from_oracle(oracle.as_ref()))
            })
            .collect()
    }
}

impl NodeScorer for ClcDetector {
    fn name(&self) -> &'static str {
        "CLC"
    }

    fn node_scores(&self, seq: &GraphSequence) -> Result<Vec<Vec<f64>>> {
        let _span = cad_obs::span!("baseline_clc");
        let cc = self.centralities(seq)?;
        Ok(cc
            .windows(2)
            .map(|w| w[0].iter().zip(&w[1]).map(|(a, b)| (b - a).abs()).collect())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cad_graph::WeightedGraph;

    #[test]
    fn unchanged_graph_scores_zero() {
        let g = WeightedGraph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let seq = GraphSequence::new(vec![g.clone(), g]).unwrap();
        let ns = ClcDetector::new().node_scores(&seq).unwrap();
        assert!(ns[0].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn bridge_change_moves_many_centralities() {
        // Path 0-1-2-3; the 1-2 edge weakens: every node's closeness
        // changes, illustrating CLC's affected-vs-responsible confusion.
        let g0 = WeightedGraph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let g1 = WeightedGraph::from_edges(4, &[(0, 1, 1.0), (1, 2, 0.1), (2, 3, 1.0)]).unwrap();
        let seq = GraphSequence::new(vec![g0, g1]).unwrap();
        let ns = ClcDetector::new().node_scores(&seq).unwrap();
        assert!(ns[0].iter().all(|&v| v > 0.0), "{:?}", ns[0]);
    }

    #[test]
    fn oracle_closeness_matches_reference_implementation() {
        // The oracle-backed closeness must agree exactly with the direct
        // Dijkstra implementation in cad-graph (same distances, same
        // Wasserman–Faust normalization) — including across components.
        let g = WeightedGraph::from_edges(
            6,
            &[
                (0, 1, 2.0),
                (1, 2, 0.5),
                (2, 3, 1.0),
                (0, 3, 1.0),
                (4, 5, 3.0),
            ],
        )
        .unwrap();
        let seq = GraphSequence::new(vec![g.clone(), g.clone()]).unwrap();
        let oracle_cc = ClcDetector::new().centralities(&seq).unwrap();
        let direct_cc = cad_graph::algo::closeness_centrality(&g);
        for (a, b) in oracle_cc[0].iter().zip(&direct_cc) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn name_is_clc() {
        assert_eq!(ClcDetector::new().name(), "CLC");
    }
}
