//! ACT — the activity-vector method of Ide & Kashima (KDD 2004).
//!
//! For each graph instance the *activity vector* `a_t` is the principal
//! eigenvector of the adjacency matrix `A_t` (non-negative by
//! Perron–Frobenius; unit norm). The *typical pattern* `r_t` summarizes
//! the last `w` activity vectors as the principal left singular vector of
//! `U = [a_{t−w+1} … a_t]`, and the transition `t → t+1` is scored by
//!
//! ```text
//! z_t = 1 − r_tᵀ a_{t+1}
//! ```
//!
//! (small when the new activity vector lies along the recent pattern).
//! Node attribution follows Akoglu & Faloutsos: node `i` is scored by
//! `|a_{t+1}(i) − r_t(i)|`, the quantity the paper uses when comparing
//! localization quality with CAD (Figure 3, §4.2).

use crate::Result;
use cad_core::NodeScorer;
use cad_graph::{GraphError, GraphSequence};
use cad_linalg::eig::{dominant_eigenpair, PowerOptions};
use cad_linalg::vecops;

/// Options for [`ActDetector`].
#[derive(Debug, Clone, Copy)]
pub struct ActOptions {
    /// Window size `w` for the typical pattern (the paper uses `w = 1`
    /// on the toy data and `w = 3` on Enron).
    pub window: usize,
    /// Power-iteration controls for the activity vectors.
    pub power: PowerOptions,
}

impl Default for ActOptions {
    fn default() -> Self {
        ActOptions {
            window: 1,
            power: PowerOptions::default(),
        }
    }
}

/// The ACT detector.
#[derive(Debug, Clone, Default)]
pub struct ActDetector {
    opts: ActOptions,
}

impl ActDetector {
    /// Create with the given options.
    pub fn new(opts: ActOptions) -> Self {
        ActDetector { opts }
    }

    /// Create with window size `w` and default power iteration.
    pub fn with_window(w: usize) -> Self {
        ActDetector {
            opts: ActOptions {
                window: w,
                ..Default::default()
            },
        }
    }

    /// Activity vectors of every instance (unit norm, sign-canonical).
    pub fn activity_vectors(&self, seq: &GraphSequence) -> Result<Vec<Vec<f64>>> {
        if self.opts.window == 0 {
            return Err(GraphError::InvalidInput("ACT window must be ≥ 1".into()));
        }
        seq.graphs()
            .iter()
            .map(|g| {
                let (_, v) = dominant_eigenpair(g.adjacency(), self.opts.power)?;
                Ok(v)
            })
            .collect()
    }

    /// Typical pattern `r_t` from the activity vectors of instances
    /// `t−w+1 ..= t` (window clamped at the sequence start).
    ///
    /// Computed as the principal left singular vector of the `n × w`
    /// window matrix via the `w × w` Gram matrix — exact and cheap since
    /// `w` is small.
    fn typical_pattern(&self, acts: &[Vec<f64>], t: usize) -> Vec<f64> {
        let w = self.opts.window;
        let lo = (t + 1).saturating_sub(w);
        let window = &acts[lo..=t];
        if window.len() == 1 {
            return window[0].clone();
        }
        // Gram matrix G = UᵀU (w × w), principal eigenvector v, then
        // r = U v / ‖U v‖.
        let wlen = window.len();
        let mut gram = cad_linalg::DenseMatrix::zeros(wlen, wlen);
        for i in 0..wlen {
            for j in i..wlen {
                let d = vecops::dot(&window[i], &window[j]);
                gram.set(i, j, d);
                gram.set(j, i, d);
            }
        }
        let eig = cad_linalg::eig::jacobi_eigen(&gram, Default::default())
            .expect("gram matrix is symmetric PSD");
        let v = eig.vector(wlen - 1); // largest eigenvalue is last
        let n = window[0].len();
        let mut r = vec![0.0; n];
        for (vi, a) in v.iter().zip(window) {
            vecops::axpy(*vi, a, &mut r);
        }
        vecops::normalize(&mut r);
        // Activity vectors are non-negative; keep r in the same orthant.
        if r.iter().sum::<f64>() < 0.0 {
            vecops::scale(-1.0, &mut r);
        }
        r
    }

    /// Event-detection scores `z_t = 1 − r_tᵀ a_{t+1}` per transition.
    pub fn transition_scores(&self, seq: &GraphSequence) -> Result<Vec<f64>> {
        let acts = self.activity_vectors(seq)?;
        Ok((0..seq.n_transitions())
            .map(|t| {
                let r = self.typical_pattern(&acts, t);
                (1.0 - vecops::dot(&r, &acts[t + 1])).max(0.0)
            })
            .collect())
    }
}

impl NodeScorer for ActDetector {
    fn name(&self) -> &'static str {
        "ACT"
    }

    /// Node attribution `|a_{t+1}(i) − r_t(i)|` per transition.
    fn node_scores(&self, seq: &GraphSequence) -> Result<Vec<Vec<f64>>> {
        let _span = cad_obs::span!("baseline_act");
        let acts = self.activity_vectors(seq)?;
        Ok((0..seq.n_transitions())
            .map(|t| {
                let r = self.typical_pattern(&acts, t);
                acts[t + 1]
                    .iter()
                    .zip(&r)
                    .map(|(a, b)| (a - b).abs())
                    .collect()
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cad_graph::WeightedGraph;

    fn clique(n_total: usize, members: &[usize], w: f64) -> Vec<(usize, usize, f64)> {
        let _ = n_total;
        let mut e = Vec::new();
        for (ai, &a) in members.iter().enumerate() {
            for &b in &members[ai + 1..] {
                e.push((a, b, w));
            }
        }
        e
    }

    #[test]
    fn stable_sequence_scores_near_zero() {
        let g = WeightedGraph::from_edges(5, &clique(5, &[0, 1, 2, 3, 4], 1.0)).unwrap();
        let seq = GraphSequence::new(vec![g.clone(), g.clone(), g]).unwrap();
        let act = ActDetector::default();
        let z = act.transition_scores(&seq).unwrap();
        assert!(z.iter().all(|&v| v < 1e-9), "{z:?}");
    }

    #[test]
    fn structural_break_scores_high() {
        // Activity concentrated on clique {0,1,2}, then jumps to {3,4,5}.
        let mut e0 = clique(6, &[0, 1, 2], 3.0);
        e0.extend(clique(6, &[3, 4, 5], 0.3));
        e0.push((2, 3, 0.1));
        let mut e1 = clique(6, &[0, 1, 2], 0.3);
        e1.extend(clique(6, &[3, 4, 5], 3.0));
        e1.push((2, 3, 0.1));
        let g0 = WeightedGraph::from_edges(6, &e0).unwrap();
        let g1 = WeightedGraph::from_edges(6, &e1).unwrap();
        let seq = GraphSequence::new(vec![g0.clone(), g0, g1]).unwrap();
        let act = ActDetector::default();
        let z = act.transition_scores(&seq).unwrap();
        assert!(z[0] < 1e-6, "stable transition: {}", z[0]);
        assert!(z[1] > 0.5, "break should score high: {}", z[1]);
    }

    #[test]
    fn node_attribution_points_at_moved_activity() {
        let mut e0 = clique(6, &[0, 1, 2], 3.0);
        e0.push((2, 3, 0.1));
        let mut e1 = e0.clone();
        e1.extend(clique(6, &[3, 4, 5], 5.0)); // new hot cluster
        let g0 = WeightedGraph::from_edges(6, &e0).unwrap();
        let g1 = WeightedGraph::from_edges(6, &e1).unwrap();
        let seq = GraphSequence::new(vec![g0, g1]).unwrap();
        let act = ActDetector::default();
        let ns = act.node_scores(&seq).unwrap();
        assert_eq!(ns.len(), 1);
        // The new cluster's nodes gain activity; old cluster loses it —
        // both see large attribution, but 4 and 5 (pure gainers) must
        // outscore an untouched old node like 0? Both move; just check
        // the *most* anomalous node is in the new cluster.
        let top = ns[0]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(
            [3, 4, 5].contains(&top),
            "top node {top}, scores {:?}",
            ns[0]
        );
    }

    #[test]
    fn window_smooths_typical_pattern() {
        // With w=2 the pattern averages the last two activity vectors.
        let g0 = WeightedGraph::from_edges(4, &clique(4, &[0, 1], 2.0)).unwrap();
        let g1 = WeightedGraph::from_edges(4, &clique(4, &[2, 3], 2.0)).unwrap();
        let seq = GraphSequence::new(vec![g0.clone(), g1.clone(), g0, g1]).unwrap();
        let act1 = ActDetector::with_window(1);
        let act2 = ActDetector::with_window(2);
        let z1 = act1.transition_scores(&seq).unwrap();
        let z2 = act2.transition_scores(&seq).unwrap();
        // Alternating pattern: w=1 sees every flip as total surprise
        // (z≈1); w=2's pattern contains both modes, so surprise shrinks.
        assert!(z1[2] > 0.9);
        assert!(z2[2] < z1[2]);
    }

    #[test]
    fn rejects_zero_window() {
        let g = WeightedGraph::from_edges(3, &[(0, 1, 1.0)]).unwrap();
        let seq = GraphSequence::new(vec![g.clone(), g]).unwrap();
        let act = ActDetector::new(ActOptions {
            window: 0,
            ..Default::default()
        });
        assert!(act.activity_vectors(&seq).is_err());
    }

    #[test]
    fn name_is_act() {
        assert_eq!(ActDetector::default().name(), "ACT");
    }
}
