//! COM — commute-time-difference ablation (paper §3.4).
//!
//! Scores node pairs by `|c_{t+1}(i,j) − c_t(i,j)|` alone. Structural
//! changes ripple through the commute times of *many* node pairs
//! (everything on the far side of a weakened bridge moves, every pair
//! across a newly-bridged cut gets closer), so COM floods the ranking
//! with affected-but-innocent pairs — the paper's second motivation for
//! the product score.
//!
//! The paper's formulation scores the complete edge set `E` (all `n²`
//! pairs); [`ComSupport::AllPairs`] is therefore the default for
//! accuracy experiments. [`ComSupport::EdgeUnion`] restricts to pairs
//! with non-zero weight at either instant, the `O(m)` variant whose
//! runtime is comparable to CAD's (used in the scalability study).

use crate::Result;
use cad_commute::{CommuteTimeEngine, EngineOptions};
use cad_core::{CadDetector, CadOptions, NodeScorer, ScoreKind};
use cad_graph::GraphSequence;

/// Which pairs COM scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ComSupport {
    /// All `n(n−1)/2` pairs — the paper's definition (`O(n²)` scoring).
    #[default]
    AllPairs,
    /// Pairs with non-zero weight at `t` or `t+1` (`O(m)` scoring).
    EdgeUnion,
}

/// The COM baseline.
#[derive(Debug, Clone)]
pub struct ComDetector {
    engine: EngineOptions,
    support: ComSupport,
    threads: usize,
    inner: CadDetector,
}

impl Default for ComDetector {
    fn default() -> Self {
        Self::new()
    }
}

impl ComDetector {
    /// Create the COM detector with the default (auto) commute engine
    /// and all-pairs support.
    pub fn new() -> Self {
        Self::with_engine(EngineOptions::default())
    }

    /// Create with an explicit commute-time engine configuration.
    pub fn with_engine(engine: EngineOptions) -> Self {
        Self::with_support(engine, ComSupport::default())
    }

    /// Create with explicit engine and support.
    pub fn with_support(engine: EngineOptions, support: ComSupport) -> Self {
        Self::with_threads(engine, support, 1)
    }

    /// Create with explicit engine, support, and worker-thread count
    /// (1 = sequential, 0 = one per core; output is thread-invariant).
    pub fn with_threads(engine: EngineOptions, support: ComSupport, threads: usize) -> Self {
        ComDetector {
            engine,
            support,
            threads,
            inner: CadDetector::new(CadOptions {
                engine,
                kind: ScoreKind::Com,
                threads,
                partition: None,
            }),
        }
    }

    /// Access the underlying `O(m)` pipeline (thresholded detection over
    /// the edge-union support).
    pub fn pipeline(&self) -> &CadDetector {
        &self.inner
    }
}

impl NodeScorer for ComDetector {
    fn name(&self) -> &'static str {
        "COM"
    }

    fn node_scores(&self, seq: &GraphSequence) -> Result<Vec<Vec<f64>>> {
        let _span = cad_obs::span!("baseline_com");
        match self.support {
            ComSupport::EdgeUnion => self.inner.node_scores(seq),
            ComSupport::AllPairs => {
                let n = seq.n_nodes();
                // Oracles come from the shared factory — COM keeps no
                // distance tables of its own — and both the per-instance
                // builds and the O(n²) per-transition accumulations run
                // on the cad-linalg worker pool.
                let engines =
                    cad_linalg::par::par_map_result(seq.graphs(), self.threads, |_, g| {
                        CommuteTimeEngine::compute(g, &self.engine)
                    })?;
                cad_linalg::par::par_tabulate_result(seq.n_transitions(), self.threads, |t| {
                    let (e0, e1) = (&engines[t], &engines[t + 1]);
                    let mut scores = vec![0.0; n];
                    for i in 0..n {
                        for j in (i + 1)..n {
                            let d = (e1.commute_distance(i, j) - e0.commute_distance(i, j)).abs();
                            scores[i] += d;
                            scores[j] += d;
                        }
                    }
                    Ok(scores)
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cad_graph::WeightedGraph;

    fn bridge_collapse_seq() -> GraphSequence {
        let g0 = WeightedGraph::from_edges(
            6,
            &[
                (0, 1, 2.0),
                (0, 2, 2.0),
                (1, 2, 2.0),
                (3, 4, 2.0),
                (3, 5, 2.0),
                (4, 5, 2.0),
                (2, 3, 2.0),
            ],
        )
        .unwrap();
        let g1 = WeightedGraph::from_edges(
            6,
            &[
                (0, 1, 2.0),
                (0, 2, 2.0),
                (1, 2, 2.0),
                (3, 4, 2.0),
                (3, 5, 2.0),
                (4, 5, 2.0),
                (2, 3, 0.1), // bridge collapses
            ],
        )
        .unwrap();
        GraphSequence::new(vec![g0, g1]).unwrap()
    }

    #[test]
    fn flags_unchanged_nodes_affected_by_structure() {
        let seq = bridge_collapse_seq();
        let ns = ComDetector::new().node_scores(&seq).unwrap();
        // Node 4's edges never changed weight, yet COM scores it high —
        // comparable to the bridge endpoints (the flooding failure mode).
        assert!(ns[0][4] > 0.0, "{:?}", ns[0]);
        let max = ns[0].iter().cloned().fold(0.0f64, f64::max);
        assert!(ns[0][4] > 0.3 * max, "COM should flood: {:?}", ns[0]);
        // CAD, in contrast, scores node 4 exactly zero.
        let cad = CadDetector::default().node_scores(&seq).unwrap();
        assert_eq!(cad[0][4], 0.0);
    }

    #[test]
    fn edge_union_support_is_sparser() {
        let seq = bridge_collapse_seq();
        let all = ComDetector::new().node_scores(&seq).unwrap();
        let union = ComDetector::with_support(EngineOptions::default(), ComSupport::EdgeUnion)
            .node_scores(&seq)
            .unwrap();
        // All-pairs accumulates at least as much mass everywhere.
        for (a, u) in all[0].iter().zip(&union[0]) {
            assert!(a + 1e-12 >= *u, "{a} < {u}");
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let seq = bridge_collapse_seq();
        let serial = ComDetector::new().node_scores(&seq).unwrap();
        for threads in [2, 8] {
            let par =
                ComDetector::with_threads(EngineOptions::default(), ComSupport::AllPairs, threads)
                    .node_scores(&seq)
                    .unwrap();
            for (a, b) in serial[0].iter().zip(&par[0]) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn name_is_com() {
        assert_eq!(ComDetector::new().name(), "COM");
    }
}
