//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
//!
//! The same checksum zlib/gzip/PNG use; implemented in-tree because the
//! build environment vendors no compression crates. A single flipped
//! bit anywhere in a checked section always changes the CRC (the code
//! is linear over GF(2) and has distance ≥ 2 at these lengths), which
//! is exactly the guarantee the corrupt-pack tests lean on.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `data` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &byte in data {
        c = TABLE[((c ^ byte as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn every_single_bit_flip_changes_the_crc() {
        let data = b"cadpack checksum probe".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip byte {i} bit {bit}");
            }
        }
    }
}
