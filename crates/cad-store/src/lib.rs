//! Persistence layer for CAD graph sequences and distance oracles.
//!
//! Two pieces, both zero-dependency (std + workspace crates only):
//!
//! * [`pack`] — the `.cadpack` on-disk format: a versioned, CRC-checked
//!   binary file holding a [`cad_graph::GraphSequence`] as one full base
//!   snapshot plus per-transition edge deltas. Time-evolving graphs in
//!   the paper's regime change only a few edges per step, so deltas are
//!   tiny; varint + zigzag encoding of sorted edge lists keeps them so.
//! * [`cache`] — a content-addressed oracle store: each built
//!   [`cad_commute::DistanceOracle`] is serialized next to the pack
//!   under a SHA-256 key of (snapshot bytes, engine, seed, params), so
//!   repeated `cad detect` runs and sliding `cad watch` windows load
//!   artifacts instead of rebuilding them.
//!
//! Everything read from disk is validated: truncation, flipped bytes
//! and version skew surface as [`StoreError`], never as a panic or a
//! silently wrong graph.

#![warn(missing_docs)]

pub mod cache;
pub mod crc;
pub mod hash;
pub mod pack;
pub mod varint;

pub use cache::{cache_key, engine_fingerprint, GcStats, OracleStore};
pub use pack::{
    apply_edge_delta, decode_edge_delta, decode_pack, encode_edge_delta, encode_pack, inspect_pack,
    read_pack, snapshot_bytes, write_pack, PackInfo, PackMeta, FORMAT_VERSION,
};

/// Errors from reading or writing store artifacts.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file does not start with the `.cadpack` magic.
    BadMagic,
    /// The file declares a format version this build cannot read.
    UnsupportedVersion(u32),
    /// Structural damage: truncation, checksum mismatch, trailing
    /// bytes, or out-of-contract values.
    Corrupt(String),
    /// The decoded edges do not form a valid graph sequence.
    Graph(cad_graph::GraphError),
}

impl StoreError {
    pub(crate) fn corrupt(msg: impl Into<String>) -> Self {
        StoreError::Corrupt(msg.into())
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::BadMagic => write!(f, "not a .cadpack file (bad magic)"),
            StoreError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported .cadpack version {v} (this build reads {})",
                    pack::FORMAT_VERSION
                )
            }
            StoreError::Corrupt(msg) => write!(f, "corrupt store data: {msg}"),
            StoreError::Graph(e) => write!(f, "decoded data is not a valid sequence: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<cad_graph::GraphError> for StoreError {
    fn from(e: cad_graph::GraphError) -> Self {
        StoreError::Graph(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StoreError>;
