//! The content-addressed oracle cache.
//!
//! Each built [`cad_commute::DistanceOracle`] is persisted under
//! `<store_dir>/oracles/<key>.oracle`, where `<key>` is the SHA-256 of
//! everything the oracle's contents depend on:
//!
//! * the **snapshot bytes** — [`crate::pack::snapshot_bytes`]: node
//!   count plus the sorted edge list with raw `f64` weight bits, so any
//!   topology or weight change (even one ULP) changes the key;
//! * the **resolved engine fingerprint** — backend name plus every
//!   numeric parameter that feeds the computation (`k`, seed, solver
//!   kind, preconditioner, CG tolerance and iteration cap), with `f64`
//!   parameters rendered as exact bit patterns. `Auto` is resolved
//!   against the graph's node count first, so an `Auto` run and an
//!   explicit run of the engine it picks share artifacts. Thread count
//!   is deliberately *excluded*: the engines guarantee bit-identical
//!   results for any thread count, so it cannot affect the artifact.
//!
//! Invalidation is therefore automatic — there is none. A key either
//! matches an artifact byte-for-byte or a fresh build happens; stale
//! entries are merely unreferenced files. Artifacts carry a CRC-32
//! footer and are written via write-then-rename, so torn or damaged
//! files fail validation and fall back to a rebuild (counted as a
//! miss), never a wrong answer.

use crate::crc::crc32;
use crate::hash::{to_hex, Sha256};
use crate::pack::snapshot_bytes;
use crate::{Result, StoreError};
use cad_commute::{
    oracle_from_bytes, CommuteTimeEngine, DistanceOracle, EngineOptions, OracleProvider,
    SharedOracle,
};
use cad_graph::WeightedGraph;
use std::path::{Path, PathBuf};

fn solver_fp(s: &cad_linalg::solve::LaplacianSolverOptions) -> String {
    use cad_linalg::solve::laplacian::PrecondKind;
    use cad_linalg::solve::SolverKind;
    let kind = match s.kind {
        SolverKind::Grounded => "grounded".to_string(),
        SolverKind::Regularized(eps) => {
            format!("regularized:{:016x}", eps.to_bits())
        }
    };
    let precond = match s.precond {
        PrecondKind::Jacobi => "jacobi",
        PrecondKind::IncompleteCholesky => "ic0",
        PrecondKind::SpanningTree => "tree",
        PrecondKind::None => "none",
    };
    let max_iter = match s.cg.max_iter {
        Some(m) => m.to_string(),
        None => "auto".to_string(),
    };
    format!(
        "solver={kind};precond={precond};tol={:016x};max_iter={max_iter}",
        s.cg.tol.to_bits()
    )
}

/// Stable fingerprint of the engine configuration, resolved against
/// the instance's node count (`Auto` collapses to the engine it picks).
pub fn engine_fingerprint(opts: &EngineOptions, n_nodes: usize) -> String {
    match opts {
        EngineOptions::Exact => "exact".to_string(),
        EngineOptions::ShortestPath => "shortest-path".to_string(),
        EngineOptions::Corrected => "corrected".to_string(),
        EngineOptions::Approximate(e) => {
            format!(
                "embedding;k={};seed={};{}",
                e.k,
                e.seed,
                solver_fp(&e.solver)
            )
        }
        EngineOptions::Auto {
            threshold,
            embedding,
        } => {
            if n_nodes <= *threshold {
                engine_fingerprint(&EngineOptions::Exact, n_nodes)
            } else {
                engine_fingerprint(&EngineOptions::Approximate(*embedding), n_nodes)
            }
        }
    }
}

/// The content-address of an oracle: SHA-256 over the snapshot bytes
/// and the resolved engine fingerprint.
pub fn cache_key(g: &WeightedGraph, opts: &EngineOptions) -> String {
    let mut h = Sha256::new();
    h.update(&snapshot_bytes(g));
    h.update(&[0xff]); // domain separator
    h.update(engine_fingerprint(opts, g.n_nodes()).as_bytes());
    to_hex(&h.finish())
}

/// The content-address of a *block-partitioned* oracle: [`cache_key`]'s
/// inputs plus the partition layout fingerprint
/// ([`cad_commute::PartitionSpec::fingerprint`] — requested mode and
/// block count). A second domain separator keeps partitioned keys
/// disjoint from monolithic ones even for identical snapshot × engine
/// pairs; like thread count, the fingerprint deliberately excludes
/// anything that cannot change artifact contents.
pub fn cache_key_partitioned(
    g: &WeightedGraph,
    opts: &EngineOptions,
    spec: cad_commute::PartitionSpec,
) -> String {
    let mut h = Sha256::new();
    h.update(&snapshot_bytes(g));
    h.update(&[0xff]); // domain separator
    h.update(engine_fingerprint(opts, g.n_nodes()).as_bytes());
    h.update(&[0xff]); // partition domain separator
    h.update(spec.fingerprint().as_bytes());
    to_hex(&h.finish())
}

/// A directory of content-addressed oracle artifacts.
///
/// Implements [`cad_commute::OracleProvider`], so it plugs straight
/// into `CadDetector`/`OnlineCad`: cache hits load a serialized oracle
/// (bypassing `CommuteTimeEngine::compute`, so `commute.oracle_builds`
/// stays untouched); misses build fresh and persist the artifact for
/// next time.
#[derive(Debug, Clone)]
pub struct OracleStore {
    dir: PathBuf,
}

impl OracleStore {
    /// Open (creating if needed) the store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(dir.join("oracles"))?;
        Ok(OracleStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Where the artifact for `key` lives.
    pub fn artifact_path(&self, key: &str) -> PathBuf {
        self.dir.join("oracles").join(format!("{key}.oracle"))
    }

    /// Load and validate the artifact for `key`. Any damage (bad CRC,
    /// truncation, undecodable payload) reads as "not cached".
    /// `decode` is the payload decoder — [`oracle_from_bytes`] for
    /// monolithic artifacts, [`cad_part::decode_oracle`] for partitioned
    /// ones (which also accepts monolithic payloads, covering the
    /// ablation-engine fallback cached under partitioned keys).
    fn load_artifact_with(
        &self,
        key: &str,
        decode: fn(&[u8]) -> cad_commute::Result<SharedOracle>,
    ) -> Option<SharedOracle> {
        let path = self.artifact_path(key);
        if !path.exists() {
            return None;
        }
        let (bytes, secs) = cad_obs::time_it(|| std::fs::read(&path));
        cad_obs::histograms::PACK_IO_SECS.observe(secs);
        let bytes = bytes.ok()?;
        cad_obs::counters::STORE_BYTES_READ.add(bytes.len() as u64);
        if bytes.len() < 4 {
            return None;
        }
        let (payload, footer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(footer.try_into().expect("4 bytes"));
        if crc32(payload) != stored {
            return None;
        }
        decode(payload).ok()
    }

    fn load_artifact(&self, key: &str) -> Option<SharedOracle> {
        self.load_artifact_with(key, oracle_from_bytes)
    }

    /// Persist `oracle` under `key` (write-then-rename, CRC footer).
    pub fn store_oracle(&self, key: &str, oracle: &dyn DistanceOracle) -> Result<()> {
        let mut bytes = oracle.to_store_bytes();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        let final_path = self.artifact_path(key);
        let tmp = final_path.with_extension(format!("tmp{}", std::process::id()));
        let (res, secs) = cad_obs::time_it(|| {
            std::fs::write(&tmp, &bytes).and_then(|()| std::fs::rename(&tmp, &final_path))
        });
        cad_obs::histograms::PACK_IO_SECS.observe(secs);
        res.map_err(StoreError::Io)
    }

    /// The provider entry point: load on hit, build-and-persist on
    /// miss. Instruments `store.cache_hits` / `store.cache_misses`.
    pub fn get_or_build(
        &self,
        g: &WeightedGraph,
        opts: &EngineOptions,
    ) -> cad_commute::Result<SharedOracle> {
        let key = cache_key(g, opts);
        if let Some(oracle) = self.load_artifact(&key) {
            if oracle.n_nodes() == g.n_nodes() {
                cad_obs::counters::STORE_CACHE_HITS.inc();
                return Ok(oracle);
            }
        }
        cad_obs::counters::STORE_CACHE_MISSES.inc();
        let oracle = CommuteTimeEngine::compute(g, opts)?;
        // Persisting is best-effort: a full disk must not fail the
        // detection run that just succeeded in memory.
        let _ = self.store_oracle(&key, oracle.as_ref());
        Ok(oracle)
    }

    /// Partitioned analogue of [`OracleStore::get_or_build`]: keys by
    /// [`cache_key_partitioned`], builds via
    /// [`cad_part::PartitionedOracle::build`] on miss.
    pub fn get_or_build_partitioned(
        &self,
        g: &WeightedGraph,
        opts: &EngineOptions,
        spec: cad_commute::PartitionSpec,
        threads: usize,
    ) -> cad_commute::Result<SharedOracle> {
        let key = cache_key_partitioned(g, opts, spec);
        if let Some(oracle) = self.load_artifact_with(&key, cad_part::decode_oracle) {
            if oracle.n_nodes() == g.n_nodes() {
                cad_obs::counters::STORE_CACHE_HITS.inc();
                return Ok(oracle);
            }
        }
        cad_obs::counters::STORE_CACHE_MISSES.inc();
        let oracle = cad_part::PartitionedOracle::build(g, opts, spec, threads)?;
        let _ = self.store_oracle(&key, oracle.as_ref());
        Ok(oracle)
    }
}

/// What one [`OracleStore::gc`] sweep did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Artifacts deleted.
    pub files_removed: usize,
    /// Bytes those artifacts occupied.
    pub bytes_reclaimed: u64,
    /// Artifacts left in the store.
    pub files_kept: usize,
    /// Bytes still occupied after the sweep.
    pub bytes_kept: u64,
}

impl OracleStore {
    /// Shrink the artifact directory to at most `max_bytes` by deleting
    /// the least-recently-modified `.oracle` files first (mtime-ordered
    /// LRU: `get_or_build` rewrites artifacts on rebuild and stores them
    /// fresh on miss, so older mtimes mean colder entries). Partially
    /// written `.tmp*` droppings are always removed. Deleting a cached
    /// oracle is always safe — the next lookup is a miss that rebuilds.
    pub fn gc(&self, max_bytes: u64) -> Result<GcStats> {
        let mut entries: Vec<(PathBuf, u64, std::time::SystemTime)> = Vec::new();
        let mut stats = GcStats::default();
        for entry in std::fs::read_dir(self.dir.join("oracles"))? {
            let entry = entry?;
            let meta = entry.metadata()?;
            if !meta.is_file() {
                continue;
            }
            let path = entry.path();
            let is_oracle = path.extension().is_some_and(|e| e == "oracle");
            if !is_oracle {
                // Stale write-then-rename temporaries from crashed
                // processes; reclaim unconditionally.
                stats.files_removed += 1;
                stats.bytes_reclaimed += meta.len();
                std::fs::remove_file(&path)?;
                continue;
            }
            let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
            entries.push((path, meta.len(), mtime));
        }
        // Oldest first; tie-break on path so the order is deterministic.
        entries.sort_by(|a, b| a.2.cmp(&b.2).then_with(|| a.0.cmp(&b.0)));
        let mut total: u64 = entries.iter().map(|e| e.1).sum();
        let mut evict = entries.into_iter();
        while total > max_bytes {
            let Some((path, len, _)) = evict.next() else {
                break;
            };
            std::fs::remove_file(&path)?;
            stats.files_removed += 1;
            stats.bytes_reclaimed += len;
            total -= len;
        }
        stats.files_kept = evict.count();
        stats.bytes_kept = total;
        Ok(stats)
    }
}

impl OracleProvider for OracleStore {
    fn oracle(
        &self,
        _t: usize,
        g: &WeightedGraph,
        opts: &EngineOptions,
    ) -> cad_commute::Result<SharedOracle> {
        self.get_or_build(g, opts)
    }

    fn oracle_partitioned(
        &self,
        _t: usize,
        g: &WeightedGraph,
        opts: &EngineOptions,
        spec: cad_commute::PartitionSpec,
        threads: usize,
    ) -> cad_commute::Result<SharedOracle> {
        self.get_or_build_partitioned(g, opts, spec, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// The hit/miss/build counters are process-global; serialize the
    /// tests that assert on their deltas.
    static COUNTER_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> MutexGuard<'static, ()> {
        COUNTER_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn fresh_store(name: &str) -> OracleStore {
        let dir = std::env::temp_dir()
            .join("cad-store-cache-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        OracleStore::open(dir).unwrap()
    }

    fn graph(w: f64) -> WeightedGraph {
        WeightedGraph::from_edges(5, &[(0, 1, w), (1, 2, 1.0), (2, 3, 2.0), (3, 4, 1.5)]).unwrap()
    }

    #[test]
    fn second_lookup_hits_and_skips_the_build() {
        let _guard = lock();
        let store = fresh_store("hit");
        let g = graph(1.0);
        let opts = EngineOptions::Exact;

        let builds_before = cad_obs::counters::ORACLE_BUILDS.get();
        let misses_before = cad_obs::counters::STORE_CACHE_MISSES.get();
        let first = store.get_or_build(&g, &opts).unwrap();
        assert_eq!(cad_obs::counters::ORACLE_BUILDS.get(), builds_before + 1);
        assert_eq!(
            cad_obs::counters::STORE_CACHE_MISSES.get(),
            misses_before + 1
        );

        let hits_before = cad_obs::counters::STORE_CACHE_HITS.get();
        let second = store.get_or_build(&g, &opts).unwrap();
        // The hit bypassed CommuteTimeEngine::compute entirely.
        assert_eq!(cad_obs::counters::ORACLE_BUILDS.get(), builds_before + 1);
        assert_eq!(cad_obs::counters::STORE_CACHE_HITS.get(), hits_before + 1);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(
                    first.distance(i, j).to_bits(),
                    second.distance(i, j).to_bits()
                );
            }
        }
    }

    #[test]
    fn key_is_sensitive_to_graph_and_engine() {
        let g1 = graph(1.0);
        let g2 = graph(1.0 + 1e-14);
        let exact = EngineOptions::Exact;
        assert_eq!(cache_key(&g1, &exact), cache_key(&graph(1.0), &exact));
        assert_ne!(cache_key(&g1, &exact), cache_key(&g2, &exact));
        assert_ne!(
            cache_key(&g1, &exact),
            cache_key(&g1, &EngineOptions::Corrected)
        );
        let emb = |seed| {
            EngineOptions::Approximate(cad_commute::EmbeddingOptions {
                k: 8,
                seed,
                ..Default::default()
            })
        };
        assert_ne!(cache_key(&g1, &emb(1)), cache_key(&g1, &emb(2)));
        assert_eq!(cache_key(&g1, &emb(1)), cache_key(&g1, &emb(1)));
    }

    #[test]
    fn auto_resolves_to_the_engine_it_picks() {
        let g = graph(1.0); // 5 nodes
        let auto = EngineOptions::Auto {
            threshold: 512,
            embedding: cad_commute::EmbeddingOptions::default(),
        };
        assert_eq!(cache_key(&g, &auto), cache_key(&g, &EngineOptions::Exact));
        let auto_low = EngineOptions::Auto {
            threshold: 2,
            embedding: cad_commute::EmbeddingOptions::default(),
        };
        assert_eq!(
            cache_key(&g, &auto_low),
            cache_key(
                &g,
                &EngineOptions::Approximate(cad_commute::EmbeddingOptions::default())
            )
        );
    }

    #[test]
    fn threads_do_not_change_the_key() {
        let g = graph(1.0);
        let emb = |threads| {
            EngineOptions::Approximate(cad_commute::EmbeddingOptions {
                k: 8,
                threads,
                ..Default::default()
            })
        };
        assert_eq!(cache_key(&g, &emb(1)), cache_key(&g, &emb(4)));
    }

    #[test]
    fn gc_evicts_oldest_artifacts_first_and_reports_bytes() {
        let _guard = lock();
        let store = fresh_store("gc");
        let opts = EngineOptions::Exact;
        // Three artifacts with strictly increasing mtimes (set
        // explicitly so the test does not depend on filesystem
        // timestamp resolution).
        let weights = [1.0, 2.0, 3.0];
        let mut paths = Vec::new();
        for (i, &w) in weights.iter().enumerate() {
            let g = graph(w);
            store.get_or_build(&g, &opts).unwrap();
            let path = store.artifact_path(&cache_key(&g, &opts));
            let t = std::time::UNIX_EPOCH + std::time::Duration::from_secs(1_000 + i as u64);
            let f = std::fs::File::options().append(true).open(&path).unwrap();
            f.set_modified(t).unwrap();
            paths.push(path);
        }
        let sizes: Vec<u64> = paths
            .iter()
            .map(|p| std::fs::metadata(p).unwrap().len())
            .collect();
        let total: u64 = sizes.iter().sum();

        // A budget that fits everything removes nothing.
        let stats = store.gc(total).unwrap();
        assert_eq!(stats.files_removed, 0);
        assert_eq!(stats.bytes_kept, total);
        assert_eq!(stats.files_kept, 3);

        // A budget one byte short evicts exactly the oldest artifact.
        let stats = store.gc(total - 1).unwrap();
        assert_eq!(stats.files_removed, 1);
        assert_eq!(stats.bytes_reclaimed, sizes[0]);
        assert!(!paths[0].exists(), "oldest artifact must go first");
        assert!(paths[1].exists() && paths[2].exists());

        // Budget zero clears the store.
        let stats = store.gc(0).unwrap();
        assert_eq!(stats.files_removed, 2);
        assert_eq!(stats.bytes_reclaimed, sizes[1] + sizes[2]);
        assert_eq!(stats.bytes_kept, 0);
        assert_eq!(stats.files_kept, 0);
    }

    #[test]
    fn gc_always_removes_stale_tmp_files() {
        let _guard = lock();
        let store = fresh_store("gc-tmp");
        let g = graph(1.0);
        store.get_or_build(&g, &EngineOptions::Exact).unwrap();
        let tmp = store.dir().join("oracles").join("abc.tmp9999");
        std::fs::write(&tmp, b"torn write").unwrap();
        let stats = store.gc(u64::MAX).unwrap();
        assert!(!tmp.exists());
        assert_eq!(stats.files_removed, 1);
        assert_eq!(stats.bytes_reclaimed, 10);
        assert_eq!(stats.files_kept, 1);
    }

    #[test]
    fn partitioned_keys_are_disjoint_and_layout_sensitive() {
        use cad_commute::{PartitionMode, PartitionSpec};
        let g = graph(1.0);
        let opts = EngineOptions::Exact;
        let spec = |blocks, mode| PartitionSpec { blocks, mode };
        let base = cache_key_partitioned(&g, &opts, spec(2, PartitionMode::Bfs));
        // Partitioned keys never collide with monolithic ones.
        assert_ne!(base, cache_key(&g, &opts));
        // Block count and mode are part of the address...
        assert_ne!(
            base,
            cache_key_partitioned(&g, &opts, spec(3, PartitionMode::Bfs))
        );
        assert_ne!(
            base,
            cache_key_partitioned(&g, &opts, spec(2, PartitionMode::Auto))
        );
        // ...and the same request is stable.
        assert_eq!(
            base,
            cache_key_partitioned(&graph(1.0), &opts, spec(2, PartitionMode::Bfs))
        );
        // Snapshot and engine still separate as for monolithic keys.
        assert_ne!(
            base,
            cache_key_partitioned(&graph(2.0), &opts, spec(2, PartitionMode::Bfs))
        );
        assert_ne!(
            base,
            cache_key_partitioned(&g, &EngineOptions::Corrected, spec(2, PartitionMode::Bfs))
        );
    }

    #[test]
    fn partitioned_lookup_hits_with_bit_identical_queries() {
        use cad_commute::{PartitionMode, PartitionSpec};
        let _guard = lock();
        let store = fresh_store("part-hit");
        let g = graph(1.0);
        let opts = EngineOptions::Exact;
        let spec = PartitionSpec {
            blocks: 2,
            mode: PartitionMode::Bfs,
        };

        let misses_before = cad_obs::counters::STORE_CACHE_MISSES.get();
        let first = store.get_or_build_partitioned(&g, &opts, spec, 1).unwrap();
        assert_eq!(
            cad_obs::counters::STORE_CACHE_MISSES.get(),
            misses_before + 1
        );
        assert_eq!(first.partition_info().map(|i| i.blocks), Some(2));

        let hits_before = cad_obs::counters::STORE_CACHE_HITS.get();
        let second = store.get_or_build_partitioned(&g, &opts, spec, 1).unwrap();
        assert_eq!(cad_obs::counters::STORE_CACHE_HITS.get(), hits_before + 1);
        assert_eq!(second.partition_info(), first.partition_info());
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(
                    first.distance(i, j).to_bits(),
                    second.distance(i, j).to_bits()
                );
            }
        }
        // The monolithic key for the same snapshot × engine is untouched.
        assert!(!store.artifact_path(&cache_key(&g, &opts)).exists());
    }

    #[test]
    fn corrupted_artifact_falls_back_to_rebuild() {
        let _guard = lock();
        let store = fresh_store("corrupt");
        let g = graph(1.0);
        let opts = EngineOptions::Exact;
        store.get_or_build(&g, &opts).unwrap();

        let key = cache_key(&g, &opts);
        let path = store.artifact_path(&key);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let misses_before = cad_obs::counters::STORE_CACHE_MISSES.get();
        let rebuilt = store.get_or_build(&g, &opts).unwrap();
        assert_eq!(
            cad_obs::counters::STORE_CACHE_MISSES.get(),
            misses_before + 1,
            "damaged artifact must read as a miss"
        );
        assert_eq!(rebuilt.n_nodes(), 5);
        // The rebuild repaired the artifact in place.
        let hits_before = cad_obs::counters::STORE_CACHE_HITS.get();
        store.get_or_build(&g, &opts).unwrap();
        assert_eq!(cad_obs::counters::STORE_CACHE_HITS.get(), hits_before + 1);
    }
}
