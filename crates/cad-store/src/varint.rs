//! LEB128 variable-length integers and zigzag signed mapping.
//!
//! The pack format stores node indices as deltas between consecutive
//! sorted edges, so most values are tiny; LEB128 keeps them to one or
//! two bytes. Deltas of the second endpoint can be negative when the
//! first endpoint advances, hence the zigzag mapping for `i64`.

use crate::StoreError;

/// Append `v` to `out` as an unsigned LEB128 varint (1–10 bytes).
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read an unsigned LEB128 varint from the front of `buf`, advancing it.
pub fn read_u64(buf: &mut &[u8]) -> Result<u64, StoreError> {
    let mut v: u64 = 0;
    for (i, &byte) in buf.iter().enumerate() {
        if i == 10 {
            return Err(StoreError::corrupt("varint longer than 10 bytes"));
        }
        let payload = (byte & 0x7f) as u64;
        // The 10th byte holds bits 63.. — anything beyond the low bit
        // would shift out of a u64 silently.
        if i == 9 && payload > 1 {
            return Err(StoreError::corrupt("varint overflows u64"));
        }
        v |= payload << (7 * i);
        if byte & 0x80 == 0 {
            *buf = &buf[i + 1..];
            return Ok(v);
        }
    }
    Err(StoreError::corrupt("varint truncated"))
}

/// Map a signed value to the zigzag unsigned encoding
/// (`0, -1, 1, -2, … → 0, 1, 2, 3, …`).
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append `v` to `out` zigzag-mapped then LEB128-encoded.
pub fn write_i64(out: &mut Vec<u8>, v: i64) {
    write_u64(out, zigzag(v));
}

/// Read a zigzag LEB128 signed varint from the front of `buf`.
pub fn read_i64(buf: &mut &[u8]) -> Result<i64, StoreError> {
    read_u64(buf).map(unzigzag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsigned_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut slice = buf.as_slice();
            assert_eq!(read_u64(&mut slice).unwrap(), v);
            assert!(slice.is_empty(), "no trailing bytes for {v}");
        }
    }

    #[test]
    fn signed_round_trip() {
        for v in [0i64, -1, 1, -64, 64, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let mut slice = buf.as_slice();
            assert_eq!(read_i64(&mut slice).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_is_compact_for_small_magnitudes() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(unzigzag(zigzag(-12345)), -12345);
    }

    #[test]
    fn truncated_and_overlong_are_rejected() {
        let mut empty: &[u8] = &[];
        assert!(read_u64(&mut empty).is_err());
        let mut dangling: &[u8] = &[0x80];
        assert!(read_u64(&mut dangling).is_err());
        let mut overlong: &[u8] = &[0x80; 11];
        assert!(read_u64(&mut overlong).is_err());
        // 10 continuation-heavy bytes whose top chunk overflows 64 bits.
        let mut toobig: &[u8] = &[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        assert!(read_u64(&mut toobig).is_err());
    }
}
