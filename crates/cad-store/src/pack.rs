//! The `.cadpack` wire format.
//!
//! Layout (all multi-byte integers little-endian unless varint):
//!
//! ```text
//! magic    8 bytes   "CADPACK\0"
//! version  u32       format version (currently 1)
//! count    u32       number of sections that follow
//! section  repeated  tag u8 · len u32 · payload[len] · crc u32
//! ```
//!
//! The CRC-32 of each section covers its tag and length bytes as well
//! as the payload, so a flip anywhere inside a section is caught by the
//! checksum; flips in the magic, version or count fail structural
//! validation (bad magic / unsupported version / truncation / trailing
//! bytes). Sections appear in fixed order: one **meta** (tag 1), one
//! **base snapshot** (tag 2), then exactly `n_instances − 1` **delta**
//! sections (tag 3), one per transition.
//!
//! Edge lists are stored sorted by `(u, v)` with `u < v` and encoded as
//! consecutive deltas: `du = u − prev_u` as an unsigned varint (the
//! list is sorted, so never negative) and `dv = v − prev_v` as a
//! zigzag varint (`v` can fall when `u` advances). Weights are the raw
//! IEEE-754 bits as 8 little-endian bytes — decoding reproduces the
//! exact `f64`s the writer saw, which is what makes pack→load→score
//! bit-identical to parse→build→score. In delta sections a weight of
//! exactly `+0.0` (bit pattern 0) marks edge removal; live graphs never
//! store zero-weight edges, so the marker is unambiguous.

use crate::crc::crc32;
use crate::varint::{read_i64, read_u64, write_i64, write_u64};
use crate::{Result, StoreError};
use cad_graph::{GraphSequence, WeightedGraph};
use std::collections::BTreeMap;
use std::path::Path;

/// File magic, 8 bytes.
pub const MAGIC: &[u8; 8] = b"CADPACK\0";
/// Current wire-format version.
pub const FORMAT_VERSION: u32 = 1;

const TAG_META: u8 = 1;
const TAG_BASE: u8 = 2;
const TAG_DELTA: u8 = 3;

/// Identity of a packed sequence (the meta section).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackMeta {
    /// Nodes per instance.
    pub n_nodes: usize,
    /// Graph instances in the sequence.
    pub n_instances: usize,
    /// Free-form label recorded at pack time (dataset name etc.).
    pub label: String,
}

/// Summary of a pack file, as printed by `cad inspect`.
#[derive(Debug, Clone)]
pub struct PackInfo {
    /// Declared wire-format version.
    pub version: u32,
    /// The meta section.
    pub meta: PackMeta,
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Edges in the base snapshot.
    pub base_edges: usize,
    /// Changed-edge entries per transition delta, in order.
    pub delta_edges: Vec<usize>,
}

// ---------------------------------------------------------------------
// Edge-list encoding (shared by base, deltas, and cache keys)
// ---------------------------------------------------------------------

fn encode_edges(out: &mut Vec<u8>, edges: &[(usize, usize, f64)]) {
    write_u64(out, edges.len() as u64);
    let (mut pu, mut pv) = (0u64, 0i64);
    for &(u, v, w) in edges {
        let (u, v) = (u as u64, v as u64);
        write_u64(out, u - pu);
        write_i64(out, v as i64 - pv);
        out.extend_from_slice(&w.to_bits().to_le_bytes());
        pu = u;
        pv = v as i64;
    }
}

fn decode_edges(buf: &mut &[u8], what: &str) -> Result<Vec<(usize, usize, f64)>> {
    let n = read_u64(buf)?;
    // Each edge takes ≥ 10 bytes (two 1-byte varints + 8 weight bytes),
    // so a count the remaining payload cannot hold is corruption — and
    // bounding it here keeps `with_capacity` from over-allocating on
    // hostile input.
    if n > buf.len() as u64 / 10 {
        return Err(StoreError::corrupt(format!(
            "{what}: edge count {n} exceeds payload capacity"
        )));
    }
    let mut edges = Vec::with_capacity(n as usize);
    let (mut pu, mut pv) = (0u64, 0i64);
    let mut prev: Option<(u64, u64)> = None;
    for i in 0..n {
        let u = pu
            .checked_add(read_u64(buf)?)
            .ok_or_else(|| StoreError::corrupt(format!("{what}: edge {i} node overflow")))?;
        let v = pv
            .checked_add(read_i64(buf)?)
            .ok_or_else(|| StoreError::corrupt(format!("{what}: edge {i} node overflow")))?;
        if v < 1 {
            return Err(StoreError::corrupt(format!(
                "{what}: edge {i} endpoint v={v} below 1"
            )));
        }
        let v = v as u64;
        if u >= v {
            return Err(StoreError::corrupt(format!(
                "{what}: edge {i} not upper-triangular (u={u}, v={v})"
            )));
        }
        if let Some(p) = prev {
            if (u, v) <= p {
                return Err(StoreError::corrupt(format!(
                    "{what}: edge {i} out of (u, v) order"
                )));
            }
        }
        prev = Some((u, v));
        if buf.len() < 8 {
            return Err(StoreError::corrupt(format!(
                "{what}: truncated weight at edge {i}"
            )));
        }
        let (raw, rest) = buf.split_at(8);
        *buf = rest;
        let w = f64::from_bits(u64::from_le_bytes(raw.try_into().expect("8 bytes")));
        edges.push((u as usize, v as usize, w));
        pu = u;
        pv = v as i64;
    }
    Ok(edges)
}

/// Canonical bytes of one snapshot: node count plus the sorted
/// raw-bits edge encoding above. This is the graph component of the
/// oracle-cache key — two graphs share it iff they have identical
/// topology and bit-identical weights.
pub fn snapshot_bytes(g: &WeightedGraph) -> Vec<u8> {
    let edges: Vec<_> = g.edges().collect();
    let mut out = Vec::with_capacity(16 + 10 * edges.len());
    write_u64(&mut out, g.n_nodes() as u64);
    encode_edges(&mut out, &edges);
    out
}

// ---------------------------------------------------------------------
// Delta computation / application
// ---------------------------------------------------------------------

/// Changed edges from `old` to `new`: entries `(u, v, w_new)` with
/// `w_new = +0.0` marking removal. Both inputs iterate sorted.
fn diff_edges(old: &WeightedGraph, new: &WeightedGraph) -> Vec<(usize, usize, f64)> {
    let mut out = Vec::new();
    let mut a = old.edges().peekable();
    let mut b = new.edges().peekable();
    loop {
        match (a.peek().copied(), b.peek().copied()) {
            (Some((ou, ov, _)), Some((nu, nv, nw))) => {
                use std::cmp::Ordering::*;
                match (ou, ov).cmp(&(nu, nv)) {
                    Less => {
                        out.push((ou, ov, 0.0));
                        a.next();
                    }
                    Greater => {
                        out.push((nu, nv, nw));
                        b.next();
                    }
                    Equal => {
                        let ow = a.next().expect("peeked").2;
                        b.next();
                        if ow.to_bits() != nw.to_bits() {
                            out.push((nu, nv, nw));
                        }
                    }
                }
            }
            (Some((ou, ov, _)), None) => {
                out.push((ou, ov, 0.0));
                a.next();
            }
            (None, Some((nu, nv, nw))) => {
                out.push((nu, nv, nw));
                b.next();
            }
            (None, None) => break,
        }
    }
    out
}

fn apply_delta(
    edges: &mut BTreeMap<(usize, usize), u64>,
    delta: &[(usize, usize, f64)],
    t: usize,
) -> Result<()> {
    for &(u, v, w) in delta {
        let bits = w.to_bits();
        if bits == 0 {
            if edges.remove(&(u, v)).is_none() {
                return Err(StoreError::corrupt(format!(
                    "delta {t}: removes absent edge ({u}, {v})"
                )));
            }
        } else {
            edges.insert((u, v), bits);
        }
    }
    Ok(())
}

/// Encode the changed edges from `old` to `new` as a standalone
/// edge-delta body (the same varint/zigzag/raw-bits wire encoding used
/// by in-pack delta sections, without section framing). A weight of
/// exactly `+0.0` marks removal. This is the payload format the
/// `cad serve` snapshot endpoint accepts as a `.cadpack` delta.
pub fn encode_edge_delta(old: &WeightedGraph, new: &WeightedGraph) -> Vec<u8> {
    let delta = diff_edges(old, new);
    let mut out = Vec::with_capacity(8 + 10 * delta.len());
    encode_edges(&mut out, &delta);
    out
}

/// Decode a standalone edge-delta body produced by
/// [`encode_edge_delta`] (or any writer of the same wire encoding).
/// Rejects trailing bytes and all the structural corruption the
/// in-pack decoder rejects.
pub fn decode_edge_delta(bytes: &[u8]) -> Result<Vec<(usize, usize, f64)>> {
    let mut buf = bytes;
    let delta = decode_edges(&mut buf, "edge delta")?;
    if !buf.is_empty() {
        return Err(StoreError::corrupt(format!(
            "edge delta: {} trailing bytes",
            buf.len()
        )));
    }
    Ok(delta)
}

/// Apply a decoded edge delta to `base`, producing the next snapshot.
/// Entries with weight `+0.0` remove the named edge (an error if it is
/// absent); all other entries insert or overwrite. Endpoints at or
/// beyond `base.n_nodes()` surface as a [`StoreError::Graph`] from
/// reassembly, never a panic.
pub fn apply_edge_delta(
    base: &WeightedGraph,
    delta: &[(usize, usize, f64)],
) -> Result<WeightedGraph> {
    let mut edges: BTreeMap<(usize, usize), u64> = base
        .edges()
        .map(|(u, v, w)| ((u, v), w.to_bits()))
        .collect();
    apply_delta(&mut edges, delta, 0)?;
    let list: Vec<_> = edges
        .iter()
        .map(|(&(u, v), &bits)| (u, v, f64::from_bits(bits)))
        .collect();
    Ok(WeightedGraph::from_edges(base.n_nodes(), &list)?)
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn push_section(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    let start = out.len();
    out.push(tag);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Serialize a sequence to `.cadpack` bytes.
pub fn encode_pack(seq: &GraphSequence, label: &str) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    let n_sections = 2 + seq.n_transitions() as u32;
    out.extend_from_slice(&n_sections.to_le_bytes());

    let mut meta = Vec::new();
    write_u64(&mut meta, seq.n_nodes() as u64);
    write_u64(&mut meta, seq.len() as u64);
    write_u64(&mut meta, label.len() as u64);
    meta.extend_from_slice(label.as_bytes());
    push_section(&mut out, TAG_META, &meta);

    let graphs = seq.graphs();
    let base: Vec<_> = graphs[0].edges().collect();
    let mut payload = Vec::new();
    encode_edges(&mut payload, &base);
    push_section(&mut out, TAG_BASE, &payload);

    for pair in graphs.windows(2) {
        let delta = diff_edges(&pair[0], &pair[1]);
        let mut payload = Vec::new();
        encode_edges(&mut payload, &delta);
        push_section(&mut out, TAG_DELTA, &payload);
    }
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Section<'a> {
    tag: u8,
    payload: &'a [u8],
}

/// Split validated sections out of a pack image, checking magic,
/// version, counts, CRCs, truncation and trailing bytes.
fn split_sections(bytes: &[u8]) -> Result<(u32, Vec<Section<'_>>)> {
    if bytes.len() < 8 || &bytes[..8] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    if bytes.len() < 16 {
        return Err(StoreError::corrupt("truncated header"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let count = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    let mut rest = &bytes[16..];
    let mut sections = Vec::new();
    for s in 0..count {
        if rest.len() < 5 {
            return Err(StoreError::corrupt(format!(
                "section {s}: truncated header"
            )));
        }
        let tag = rest[0];
        let len = u32::from_le_bytes(rest[1..5].try_into().expect("4 bytes")) as usize;
        let total = 5usize
            .checked_add(len)
            .and_then(|t| t.checked_add(4))
            .filter(|&t| t <= rest.len())
            .ok_or_else(|| StoreError::corrupt(format!("section {s}: truncated body")))?;
        let stored = u32::from_le_bytes(rest[5 + len..total].try_into().expect("4 bytes"));
        let computed = crc32(&rest[..5 + len]);
        if stored != computed {
            return Err(StoreError::corrupt(format!(
                "section {s}: CRC mismatch (stored {stored:#010x}, computed {computed:#010x})"
            )));
        }
        sections.push(Section {
            tag,
            payload: &rest[5..5 + len],
        });
        rest = &rest[total..];
    }
    if !rest.is_empty() {
        return Err(StoreError::corrupt(format!(
            "{} trailing bytes after last section",
            rest.len()
        )));
    }
    Ok((version, sections))
}

fn decode_meta(payload: &[u8]) -> Result<PackMeta> {
    let mut buf = payload;
    let n_nodes = read_u64(&mut buf)?;
    let n_instances = read_u64(&mut buf)?;
    let label_len = read_u64(&mut buf)? as usize;
    if buf.len() != label_len {
        return Err(StoreError::corrupt("meta: label length mismatch"));
    }
    let label = std::str::from_utf8(buf)
        .map_err(|_| StoreError::corrupt("meta: label is not UTF-8"))?
        .to_string();
    if n_instances < 2 {
        return Err(StoreError::corrupt(format!(
            "meta: a sequence needs ≥ 2 instances, found {n_instances}"
        )));
    }
    if n_nodes == 0 || n_nodes > (1 << 32) {
        return Err(StoreError::corrupt(format!(
            "meta: implausible node count {n_nodes}"
        )));
    }
    Ok(PackMeta {
        n_nodes: n_nodes as usize,
        n_instances: n_instances as usize,
        label,
    })
}

fn expect_tag(s: &Section<'_>, want: u8, what: &str) -> Result<()> {
    if s.tag != want {
        return Err(StoreError::corrupt(format!(
            "expected {what} section (tag {want}), found tag {}",
            s.tag
        )));
    }
    Ok(())
}

/// One decoded edge list per section: the base snapshot first, then
/// one list per delta.
type EdgeLists = Vec<Vec<(usize, usize, f64)>>;

fn decode_structure(bytes: &[u8]) -> Result<(PackMeta, EdgeLists)> {
    let (_, sections) = split_sections(bytes)?;
    if sections.len() < 2 {
        return Err(StoreError::corrupt(format!(
            "need ≥ 2 sections (meta + base), found {}",
            sections.len()
        )));
    }
    expect_tag(&sections[0], TAG_META, "meta")?;
    let meta = decode_meta(sections[0].payload)?;
    if sections.len() != 1 + meta.n_instances {
        return Err(StoreError::corrupt(format!(
            "meta declares {} instances but file has {} sections",
            meta.n_instances,
            sections.len()
        )));
    }
    expect_tag(&sections[1], TAG_BASE, "base snapshot")?;
    let mut lists = Vec::with_capacity(meta.n_instances);
    for (i, s) in sections[1..].iter().enumerate() {
        let what = if i == 0 {
            "base snapshot".to_string()
        } else {
            expect_tag(s, TAG_DELTA, "delta")?;
            format!("delta {}", i - 1)
        };
        let mut buf = s.payload;
        let edges = decode_edges(&mut buf, &what)?;
        if !buf.is_empty() {
            return Err(StoreError::corrupt(format!(
                "{what}: {} trailing payload bytes",
                buf.len()
            )));
        }
        lists.push(edges);
    }
    Ok((meta, lists))
}

/// Decode `.cadpack` bytes back into the graph sequence.
pub fn decode_pack(bytes: &[u8]) -> Result<GraphSequence> {
    let (meta, lists) = decode_structure(bytes)?;
    let mut edges: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    for &(u, v, w) in &lists[0] {
        if w.to_bits() == 0 {
            return Err(StoreError::corrupt(format!(
                "base snapshot: zero-weight edge ({u}, {v})"
            )));
        }
        edges.insert((u, v), w.to_bits());
    }
    let assemble = |edges: &BTreeMap<(usize, usize), u64>| -> Result<WeightedGraph> {
        let list: Vec<_> = edges
            .iter()
            .map(|(&(u, v), &bits)| (u, v, f64::from_bits(bits)))
            .collect();
        Ok(WeightedGraph::from_edges(meta.n_nodes, &list)?)
    };
    let mut graphs = Vec::with_capacity(meta.n_instances);
    graphs.push(assemble(&edges)?);
    for (t, delta) in lists[1..].iter().enumerate() {
        apply_delta(&mut edges, delta, t)?;
        graphs.push(assemble(&edges)?);
    }
    Ok(GraphSequence::new(graphs)?)
}

/// Decode only the structure (meta + per-section sizes), skipping graph
/// reconstruction. All validation still runs.
pub fn inspect_bytes(bytes: &[u8]) -> Result<PackInfo> {
    let (meta, lists) = decode_structure(bytes)?;
    Ok(PackInfo {
        version: FORMAT_VERSION,
        base_edges: lists[0].len(),
        delta_edges: lists[1..].iter().map(Vec::len).collect(),
        file_bytes: bytes.len() as u64,
        meta,
    })
}

// ---------------------------------------------------------------------
// File I/O (instrumented)
// ---------------------------------------------------------------------

fn read_instrumented(path: &Path) -> Result<Vec<u8>> {
    let (bytes, secs) = cad_obs::time_it(|| std::fs::read(path));
    cad_obs::histograms::PACK_IO_SECS.observe(secs);
    let bytes = bytes?;
    cad_obs::counters::STORE_BYTES_READ.add(bytes.len() as u64);
    Ok(bytes)
}

/// Write `seq` to `path` as a `.cadpack` file.
pub fn write_pack(path: &Path, seq: &GraphSequence, label: &str) -> Result<u64> {
    let bytes = encode_pack(seq, label);
    let (res, secs) = cad_obs::time_it(|| std::fs::write(path, &bytes));
    cad_obs::histograms::PACK_IO_SECS.observe(secs);
    res?;
    Ok(bytes.len() as u64)
}

/// Read and validate the `.cadpack` file at `path`.
pub fn read_pack(path: &Path) -> Result<GraphSequence> {
    decode_pack(&read_instrumented(path)?)
}

/// Validate the `.cadpack` file at `path` and summarize it.
pub fn inspect_pack(path: &Path) -> Result<PackInfo> {
    inspect_bytes(&read_instrumented(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sequence() -> GraphSequence {
        let g = |bridge: f64| {
            let mut edges = vec![
                (0, 1, 3.0),
                (0, 2, 3.5),
                (1, 2, 3.0),
                (3, 4, 2.0),
                (3, 5, 2.25),
                (4, 5, 2.0),
                (2, 3, 0.2),
            ];
            if bridge > 0.0 {
                edges.push((0, 5, bridge));
            }
            WeightedGraph::from_edges(6, &edges).unwrap()
        };
        GraphSequence::new(vec![g(0.0), g(0.0), g(1.5), g(0.0)]).unwrap()
    }

    fn bit_identical(a: &GraphSequence, b: &GraphSequence) -> bool {
        a.len() == b.len()
            && a.n_nodes() == b.n_nodes()
            && a.graphs().iter().zip(b.graphs()).all(|(x, y)| {
                let xe: Vec<_> = x.edges().map(|(u, v, w)| (u, v, w.to_bits())).collect();
                let ye: Vec<_> = y.edges().map(|(u, v, w)| (u, v, w.to_bits())).collect();
                xe == ye
            })
    }

    #[test]
    fn encode_decode_round_trip_is_bit_identical() {
        let seq = sample_sequence();
        let bytes = encode_pack(&seq, "sample");
        let back = decode_pack(&bytes).unwrap();
        assert!(bit_identical(&seq, &back));
    }

    #[test]
    fn subnormal_and_extreme_weights_survive() {
        let g1 = WeightedGraph::from_edges(3, &[(0, 1, f64::MIN_POSITIVE / 4.0), (1, 2, 1.0e300)])
            .unwrap();
        let g2 = WeightedGraph::from_edges(3, &[(0, 1, 0.1 + 0.2), (1, 2, 1.0e-300)]).unwrap();
        let seq = GraphSequence::new(vec![g1, g2]).unwrap();
        let back = decode_pack(&encode_pack(&seq, "")).unwrap();
        assert!(bit_identical(&seq, &back));
    }

    #[test]
    fn deltas_are_actually_sparse() {
        let seq = sample_sequence();
        let info = inspect_bytes(&encode_pack(&seq, "sample")).unwrap();
        assert_eq!(info.base_edges, 7);
        // Transitions only add/remove the one bridge edge.
        assert_eq!(info.delta_edges, vec![0, 1, 1]);
        assert_eq!(info.meta.label, "sample");
        assert_eq!(info.meta.n_nodes, 6);
        assert_eq!(info.meta.n_instances, 4);
    }

    #[test]
    fn inspect_matches_file_io_round_trip() {
        let dir = std::env::temp_dir().join("cad-store-pack-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.cadpack");
        let seq = sample_sequence();
        let written = write_pack(&path, &seq, "fileio").unwrap();
        let info = inspect_pack(&path).unwrap();
        assert_eq!(info.file_bytes, written);
        assert_eq!(info.meta.label, "fileio");
        let back = read_pack(&path).unwrap();
        assert!(bit_identical(&seq, &back));
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let seq = sample_sequence();
        let bytes = encode_pack(&seq, "x");
        let original = decode_pack(&bytes).unwrap();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut mutated = bytes.clone();
                mutated[i] ^= 1 << bit;
                // Must error — never panic, never silently return a
                // different (or even identical-looking) sequence.
                match decode_pack(&mutated) {
                    Err(_) => {}
                    Ok(decoded) => panic!(
                        "flip byte {i} bit {bit} went undetected (decoded {} instances, bit-identical: {})",
                        decoded.len(),
                        bit_identical(&original, &decoded)
                    ),
                }
            }
        }
    }

    #[test]
    fn truncation_at_every_length_is_detected() {
        let bytes = encode_pack(&sample_sequence(), "x");
        for cut in 0..bytes.len() {
            assert!(
                decode_pack(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
        // Trailing garbage is rejected too.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(decode_pack(&extended).is_err());
    }

    #[test]
    fn wrong_magic_and_version_are_specific_errors() {
        let bytes = encode_pack(&sample_sequence(), "x");
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            decode_pack(&wrong_magic),
            Err(StoreError::BadMagic)
        ));
        let mut wrong_version = bytes.clone();
        wrong_version[8] = 99;
        assert!(matches!(
            decode_pack(&wrong_version),
            Err(StoreError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn edge_delta_round_trip_reproduces_the_next_snapshot() {
        let seq = sample_sequence();
        let graphs = seq.graphs();
        for pair in graphs.windows(2) {
            let body = encode_edge_delta(&pair[0], &pair[1]);
            let delta = decode_edge_delta(&body).unwrap();
            let next = apply_edge_delta(&pair[0], &delta).unwrap();
            let want: Vec<_> = pair[1]
                .edges()
                .map(|(u, v, w)| (u, v, w.to_bits()))
                .collect();
            let got: Vec<_> = next.edges().map(|(u, v, w)| (u, v, w.to_bits())).collect();
            assert_eq!(want, got);
        }
    }

    #[test]
    fn edge_delta_rejects_trailing_bytes_and_absent_removal() {
        let seq = sample_sequence();
        let graphs = seq.graphs();
        let mut body = encode_edge_delta(&graphs[1], &graphs[2]);
        body.push(0);
        assert!(decode_edge_delta(&body).is_err());
        // Removing an edge the base does not have is corruption, not a
        // silent no-op.
        let absent = vec![(0usize, 4usize, 0.0f64)];
        assert!(apply_edge_delta(&graphs[0], &absent).is_err());
    }

    #[test]
    fn edge_delta_with_out_of_range_endpoint_is_a_graph_error() {
        let seq = sample_sequence();
        let g = &seq.graphs()[0]; // 6 nodes
        let delta = vec![(5usize, 9usize, 1.25f64)];
        assert!(matches!(
            apply_edge_delta(g, &delta),
            Err(StoreError::Graph(_))
        ));
    }

    #[test]
    fn snapshot_bytes_distinguishes_weight_bits() {
        let a = WeightedGraph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0)]).unwrap();
        let b = WeightedGraph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0)]).unwrap();
        let c = WeightedGraph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0 + 1e-15)]).unwrap();
        assert_eq!(snapshot_bytes(&a), snapshot_bytes(&b));
        assert_ne!(snapshot_bytes(&a), snapshot_bytes(&c));
    }
}
