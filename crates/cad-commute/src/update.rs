//! Delta-driven oracle updates: the `build once, update per delta`
//! lifecycle.
//!
//! The batch pipeline builds one distance oracle per snapshot. For the
//! online paths (`cad watch`, `cad-serve`) consecutive snapshots
//! usually differ in a handful of edge weights, and rebuilding the full
//! oracle per arrival wastes almost all of its cost. This module is the
//! seam that replaces the rebuild:
//!
//! * [`EdgeDelta::between`] diffs two snapshots over the same node set
//!   into per-edge weight changes and classifies the delta as
//!   *structural* when the node count or the connected-component
//!   partition changed;
//! * [`UpdatableOracle::apply_delta`] folds a non-structural delta into
//!   an existing oracle in place — Sherman–Morrison rank-1 corrections
//!   on `L⁺` for the exact/corrected engines (Khoa–Chawla,
//!   arXiv 1107.3894; Monnig–Meyer, arXiv 1605.01091), warm-started
//!   per-row CG for the embedding engine;
//! * [`UpdateOutcome::RebuildRequired`] is the escape hatch: structural
//!   deltas, degenerate rank-1 denominators and non-updatable backends
//!   all fall back to a fresh [`crate::CommuteTimeEngine::compute`]
//!   build, which keeps the repo-wide bit-identical-to-batch invariant
//!   available on demand.
//!
//! # Tolerance contract
//!
//! An incrementally-updated oracle is *not* bit-identical to a fresh
//! batch build — it is equal up to f64 rounding of the update algebra:
//!
//! * exact/corrected: Sherman–Morrison is algebraically exact while the
//!   component partition is unchanged; the drift per applied change is
//!   a few ulps amplified by the conditioning of `L⁺`.
//! * embedding: every row is re-solved against the new Laplacian to the
//!   same CG tolerance as a cold build; the warm start changes the
//!   iterate path, not the converged accuracy.
//!
//! Both are covered by the documented bound [`UPDATE_REL_TOL`]:
//! for every node pair, `|d_upd(i,j) − d_fresh(i,j)| ≤ UPDATE_REL_TOL ·
//! (1 + d_fresh(i,j))`. The property test in `tests/incremental.rs`
//! asserts exactly this bound for every engine.
//!
//! On `RebuildRequired` (or any error) the oracle may have been
//! partially updated and must be discarded — callers clone the previous
//! oracle before applying (see `cad_core::OnlineCad`), so a fallback
//! simply drops the clone and rebuilds.

use crate::Result;
use cad_graph::WeightedGraph;

/// Sherman–Morrison denominator guard: `|1 + δw·r_eff(u,v)|` at or
/// below this is treated as a disconnection in the making (e.g. a
/// bridge-edge removal) and the update falls back to a rebuild.
pub const SM_DEN_TOL: f64 = 1e-9;

/// Documented agreement bound between an incrementally-updated oracle
/// and a fresh batch build of the same snapshot (see the module docs):
/// `|d_upd(i,j) − d_fresh(i,j)| ≤ UPDATE_REL_TOL · (1 + d_fresh(i,j))`.
pub const UPDATE_REL_TOL: f64 = 1e-6;

/// One edge whose weight differs between two snapshots.
///
/// A weight of `0.0` on either side means the edge is absent there
/// (insertion when `old_weight == 0`, removal when `new_weight == 0`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeChange {
    /// Smaller endpoint.
    pub u: usize,
    /// Larger endpoint.
    pub v: usize,
    /// Weight in the old snapshot (`0.0` = absent).
    pub old_weight: f64,
    /// Weight in the new snapshot (`0.0` = absent).
    pub new_weight: f64,
}

impl EdgeChange {
    /// The signed Laplacian perturbation `δw = new − old`.
    pub fn d_weight(&self) -> f64 {
        self.new_weight - self.old_weight
    }
}

/// The difference between two consecutive snapshots.
///
/// Borrows both graphs so update implementations can recompute whatever
/// they need (RHS vectors, degrees, adjacency) from the new snapshot
/// without the delta having to anticipate every backend's needs.
#[derive(Debug, Clone)]
pub struct EdgeDelta<'a> {
    /// The snapshot the oracle currently describes.
    pub old: &'a WeightedGraph,
    /// The snapshot the oracle should describe after the update.
    pub new: &'a WeightedGraph,
    /// Every edge whose weight differs, ascending by `(u, v)`.
    pub changes: Vec<EdgeChange>,
    /// Whether the delta changes the node count or the
    /// connected-component partition — the cases Sherman–Morrison on
    /// `L⁺` cannot express, forcing a rebuild.
    pub structural: bool,
}

impl<'a> EdgeDelta<'a> {
    /// Diff two snapshots.
    ///
    /// Structural detection: a node-count change is structural outright;
    /// otherwise the canonical component-id vectors (first-encounter
    /// order, so directly comparable for a fixed node order) of the two
    /// graphs are compared.
    pub fn between(old: &'a WeightedGraph, new: &'a WeightedGraph) -> EdgeDelta<'a> {
        let mut changes = Vec::new();
        // Both edge iterators are upper-triangle and sorted; merge them.
        let mut olds = old.edges().peekable();
        let mut news = new.edges().peekable();
        loop {
            match (olds.peek().copied(), news.peek().copied()) {
                (None, None) => break,
                (Some((u, v, w)), None) => {
                    changes.push(EdgeChange {
                        u,
                        v,
                        old_weight: w,
                        new_weight: 0.0,
                    });
                    olds.next();
                }
                (None, Some((u, v, w))) => {
                    changes.push(EdgeChange {
                        u,
                        v,
                        old_weight: 0.0,
                        new_weight: w,
                    });
                    news.next();
                }
                (Some((ou, ov, ow)), Some((nu, nv, nw))) => {
                    use std::cmp::Ordering;
                    match (ou, ov).cmp(&(nu, nv)) {
                        Ordering::Less => {
                            changes.push(EdgeChange {
                                u: ou,
                                v: ov,
                                old_weight: ow,
                                new_weight: 0.0,
                            });
                            olds.next();
                        }
                        Ordering::Greater => {
                            changes.push(EdgeChange {
                                u: nu,
                                v: nv,
                                old_weight: 0.0,
                                new_weight: nw,
                            });
                            news.next();
                        }
                        Ordering::Equal => {
                            if ow != nw {
                                changes.push(EdgeChange {
                                    u: ou,
                                    v: ov,
                                    old_weight: ow,
                                    new_weight: nw,
                                });
                            }
                            olds.next();
                            news.next();
                        }
                    }
                }
            }
        }
        let structural = old.n_nodes() != new.n_nodes() || old.components() != new.components();
        EdgeDelta {
            old,
            new,
            changes,
            structural,
        }
    }

    /// Whether the two snapshots have identical edge sets and weights.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }
}

/// Why an in-place update was declined in favour of a rebuild.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebuildReason {
    /// Node count or component partition changed.
    Structural,
    /// A Sherman–Morrison denominator hit [`SM_DEN_TOL`] (the update
    /// would disconnect a component mid-sequence).
    Degenerate,
    /// The backend cannot update in place (shortest-path table, or an
    /// embedding loaded from the store without its build options).
    Unsupported,
    /// The accumulated update count crossed the caller's refresh
    /// threshold (emitted by `cad_core`, not by the oracles).
    Refresh,
}

impl RebuildReason {
    /// Stable lowercase name (NDJSON events, HTTP responses).
    pub fn name(self) -> &'static str {
        match self {
            RebuildReason::Structural => "structural",
            RebuildReason::Degenerate => "degenerate",
            RebuildReason::Unsupported => "unsupported",
            RebuildReason::Refresh => "refresh",
        }
    }
}

/// Outcome of [`UpdatableOracle::apply_delta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOutcome {
    /// The delta was folded in; the oracle now describes `delta.new`
    /// within the [`UPDATE_REL_TOL`] contract. Carries the number of
    /// edge changes applied.
    Applied {
        /// Number of per-edge changes folded into the oracle.
        changes: usize,
    },
    /// The oracle could not ingest this delta and must be discarded;
    /// the caller rebuilds fresh (the bit-identical escape hatch).
    RebuildRequired(RebuildReason),
}

/// Extension seam over [`crate::DistanceOracle`]: backends that can
/// ingest an [`EdgeDelta`] in place instead of being rebuilt.
///
/// Obtain one via [`crate::DistanceOracle::as_updatable`]; backends
/// without update support simply return `None` there.
pub trait UpdatableOracle {
    /// Fold `delta` into the oracle in place.
    ///
    /// On [`UpdateOutcome::RebuildRequired`] (or `Err`) the oracle may
    /// be partially updated and must be discarded by the caller.
    fn apply_delta(&mut self, delta: &EdgeDelta) -> Result<UpdateOutcome>;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(n: usize, edges: &[(usize, usize, f64)]) -> WeightedGraph {
        WeightedGraph::from_edges(n, edges).unwrap()
    }

    #[test]
    fn diff_classifies_weight_insert_remove() {
        let a = g(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0)]);
        let b = g(4, &[(0, 1, 1.5), (2, 3, 1.0), (0, 3, 0.5)]);
        let d = EdgeDelta::between(&a, &b);
        assert_eq!(
            d.changes,
            vec![
                EdgeChange {
                    u: 0,
                    v: 1,
                    old_weight: 1.0,
                    new_weight: 1.5
                },
                EdgeChange {
                    u: 0,
                    v: 3,
                    old_weight: 0.0,
                    new_weight: 0.5
                },
                EdgeChange {
                    u: 1,
                    v: 2,
                    old_weight: 2.0,
                    new_weight: 0.0
                },
            ]
        );
        assert!((d.changes[0].d_weight() - 0.5).abs() < 1e-12);
        // The graph stays connected (1-0-3-2 path), so non-structural.
        assert!(!d.structural);
    }

    #[test]
    fn identical_snapshots_diff_empty() {
        let a = g(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let b = g(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let d = EdgeDelta::between(&a, &b);
        assert!(d.is_empty());
        assert!(!d.structural);
    }

    #[test]
    fn node_count_change_is_structural() {
        let a = g(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let b = g(4, &[(0, 1, 1.0), (1, 2, 1.0)]);
        assert!(EdgeDelta::between(&a, &b).structural);
    }

    #[test]
    fn disconnection_is_structural() {
        let a = g(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let b = g(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        let d = EdgeDelta::between(&a, &b);
        assert!(d.structural, "bridge removal changes the partition");
        // Reconnection is equally structural.
        assert!(EdgeDelta::between(&b, &a).structural);
        // Same components, different grouping: also structural.
        let c = g(4, &[(0, 2, 1.0), (1, 3, 1.0)]);
        assert!(EdgeDelta::between(&b, &c).structural);
    }

    #[test]
    fn reason_names_are_stable() {
        assert_eq!(RebuildReason::Structural.name(), "structural");
        assert_eq!(RebuildReason::Degenerate.name(), "degenerate");
        assert_eq!(RebuildReason::Unsupported.name(), "unsupported");
        assert_eq!(RebuildReason::Refresh.name(), "refresh");
    }
}
