//! Oracle serialization — the artifact side of the `cad-store` cache.
//!
//! Every [`DistanceOracle`] backend can be flattened to bytes and
//! reconstituted with **bit-identical** query behaviour: weights,
//! coordinates, `L⁺` entries and distance tables are stored as raw
//! IEEE-754 bit patterns (8 bytes, little-endian), so a loaded oracle
//! answers `distance`/`resistance`/`commute_distance` with exactly the
//! `f64`s a fresh build would produce (property-tested in
//! `tests/tests/store.rs`). The only thing that does not survive the
//! round trip is provenance: a loaded oracle's
//! [`DistanceOracle::build_stats`] reports zero build seconds and no
//! solve records, which is truthful — loading performed no solves.
//!
//! Layout: `magic "CADORCL\0" · version u32 · tag u8 · payload`, where
//! the tag selects the backend (1 exact, 2 embedding, 3 shortest-path,
//! 4 corrected). Integrity (CRC) is the storage layer's job; this
//! module still bounds-checks every read and rejects truncated or
//! trailing bytes, so a damaged artifact fails to load rather than
//! panicking.

use crate::corrected::CorrectedCommute;
use crate::embedding::CommuteEmbedding;
use crate::exact::ExactCommute;
use crate::oracle::{DistanceOracle, SharedOracle};
use crate::shortest::ShortestPathTable;
use crate::Result;
use cad_graph::GraphError;
use cad_linalg::{CsrMatrix, DenseMatrix};

/// Artifact magic, 8 bytes.
pub const ORACLE_MAGIC: &[u8; 8] = b"CADORCL\0";
/// Artifact format version.
pub const ORACLE_FORMAT_VERSION: u32 = 1;

const TAG_EXACT: u8 = 1;
const TAG_EMBEDDING: u8 = 2;
const TAG_SHORTEST: u8 = 3;
const TAG_CORRECTED: u8 = 4;

// ---------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64s(out: &mut Vec<u8>, values: &[f64]) {
    out.reserve(8 * values.len());
    for &v in values {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

fn header(tag: u8) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(ORACLE_MAGIC);
    out.extend_from_slice(&ORACLE_FORMAT_VERSION.to_le_bytes());
    out.push(tag);
    out
}

fn encode_exact_into(out: &mut Vec<u8>, e: &ExactCommute) {
    let (pinv, volume) = e.persist_parts();
    put_u64(out, pinv.nrows() as u64);
    out.extend_from_slice(&volume.to_bits().to_le_bytes());
    put_f64s(out, pinv.data());
}

/// Serialize any oracle to a self-describing artifact.
pub fn oracle_to_bytes(o: &dyn DistanceOracle) -> Vec<u8> {
    o.to_store_bytes()
}

pub(crate) fn exact_to_bytes(e: &ExactCommute) -> Vec<u8> {
    let mut out = header(TAG_EXACT);
    encode_exact_into(&mut out, e);
    out
}

pub(crate) fn embedding_to_bytes(e: &CommuteEmbedding) -> Vec<u8> {
    let (coords, n, k, volume) = e.persist_parts();
    let mut out = header(TAG_EMBEDDING);
    put_u64(&mut out, n as u64);
    put_u64(&mut out, k as u64);
    out.extend_from_slice(&volume.to_bits().to_le_bytes());
    put_f64s(&mut out, coords);
    out
}

pub(crate) fn shortest_to_bytes(t: &ShortestPathTable) -> Vec<u8> {
    let (n, dist) = t.persist_parts();
    let mut out = header(TAG_SHORTEST);
    put_u64(&mut out, n as u64);
    put_f64s(&mut out, dist);
    out
}

pub(crate) fn corrected_to_bytes(c: &CorrectedCommute) -> Vec<u8> {
    let (exact, degrees, adjacency) = c.persist_parts();
    let mut out = header(TAG_CORRECTED);
    encode_exact_into(&mut out, exact);
    put_f64s(&mut out, degrees);
    let entries: Vec<(usize, usize, f64)> = adjacency.iter().collect();
    put_u64(&mut out, entries.len() as u64);
    for (r, c, v) in entries {
        out.extend_from_slice(&(r as u32).to_le_bytes());
        out.extend_from_slice(&(c as u32).to_le_bytes());
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> std::result::Result<&'a [u8], GraphError> {
        if self.buf.len() < n {
            return Err(invalid(format!(
                "oracle artifact truncated: wanted {n} bytes, {} left",
                self.buf.len()
            )));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn u64(&mut self) -> std::result::Result<u64, GraphError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn usize_checked(&mut self, what: &str) -> std::result::Result<usize, GraphError> {
        let v = self.u64()?;
        // Each stored element is ≥ 8 bytes, so any plausible dimension
        // fits comfortably; this bound stops hostile counts before
        // multiplication or allocation.
        if v > (1 << 32) {
            return Err(invalid(format!("oracle artifact: implausible {what} {v}")));
        }
        Ok(v as usize)
    }

    fn f64_bits(&mut self) -> std::result::Result<f64, GraphError> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8"),
        )))
    }

    fn f64s(&mut self, n: usize, what: &str) -> std::result::Result<Vec<f64>, GraphError> {
        let raw = self.take(
            n.checked_mul(8)
                .ok_or_else(|| invalid(format!("oracle artifact: {what} length overflows")))?,
        )?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8"))))
            .collect())
    }

    fn u32(&mut self) -> std::result::Result<u32, GraphError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn finish(&self, what: &str) -> std::result::Result<(), GraphError> {
        if !self.buf.is_empty() {
            return Err(invalid(format!(
                "oracle artifact: {} trailing bytes after {what}",
                self.buf.len()
            )));
        }
        Ok(())
    }
}

fn invalid(msg: String) -> GraphError {
    GraphError::InvalidInput(msg)
}

fn square(n: usize, what: &str) -> std::result::Result<usize, GraphError> {
    n.checked_mul(n)
        .ok_or_else(|| invalid(format!("oracle artifact: {what} dimension overflows")))
}

fn decode_exact(cur: &mut Cursor<'_>) -> Result<ExactCommute> {
    let n = cur.usize_checked("node count")?;
    let volume = cur.f64_bits()?;
    let data = cur.f64s(square(n, "L⁺")?, "L⁺ entries")?;
    let pinv = DenseMatrix::from_vec(n, n, data).map_err(GraphError::from)?;
    Ok(ExactCommute::from_persist(pinv, volume))
}

/// Reconstitute an oracle from [`oracle_to_bytes`] output.
///
/// Rejects bad magic, version skew, unknown tags, truncation and
/// trailing bytes with [`GraphError::InvalidInput`] — never panics on
/// hostile input.
pub fn oracle_from_bytes(bytes: &[u8]) -> Result<SharedOracle> {
    let mut cur = Cursor { buf: bytes };
    if cur.take(8)? != ORACLE_MAGIC {
        return Err(invalid("not an oracle artifact (bad magic)".into()));
    }
    let version = cur.u32()?;
    if version != ORACLE_FORMAT_VERSION {
        return Err(invalid(format!(
            "oracle artifact version {version} unsupported (this build reads {ORACLE_FORMAT_VERSION})"
        )));
    }
    let tag = cur.take(1)?[0];
    match tag {
        TAG_EXACT => {
            let e = decode_exact(&mut cur)?;
            cur.finish("exact oracle")?;
            Ok(Box::new(e))
        }
        TAG_EMBEDDING => {
            let n = cur.usize_checked("node count")?;
            let k = cur.usize_checked("embedding dimension")?;
            let volume = cur.f64_bits()?;
            let len = n
                .checked_mul(k)
                .ok_or_else(|| invalid("oracle artifact: n·k overflows".into()))?;
            let coords = cur.f64s(len, "coordinates")?;
            cur.finish("embedding oracle")?;
            Ok(Box::new(CommuteEmbedding::from_persist(
                coords, n, k, volume,
            )))
        }
        TAG_SHORTEST => {
            let n = cur.usize_checked("node count")?;
            let dist = cur.f64s(square(n, "distance table")?, "distances")?;
            cur.finish("shortest-path oracle")?;
            Ok(Box::new(ShortestPathTable::from_persist(n, dist)))
        }
        TAG_CORRECTED => {
            let exact = decode_exact(&mut cur)?;
            let n = exact.n_nodes();
            let degrees = cur.f64s(n, "degrees")?;
            let nnz = cur.usize_checked("adjacency nnz")?;
            let mut triplets = Vec::with_capacity(nnz.min(1 << 24));
            for i in 0..nnz {
                let r = cur.u32()?;
                let c = cur.u32()?;
                let v = cur.f64_bits()?;
                if r as usize >= n || c as usize >= n {
                    return Err(invalid(format!(
                        "oracle artifact: adjacency entry {i} ({r}, {c}) out of range for n = {n}"
                    )));
                }
                triplets.push((r, c, v));
            }
            cur.finish("corrected oracle")?;
            let adjacency = CsrMatrix::from_triplets(n, n, &triplets);
            Ok(Box::new(CorrectedCommute::from_persist(
                exact, degrees, adjacency,
            )))
        }
        other => Err(invalid(format!(
            "oracle artifact: unknown backend tag {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CommuteTimeEngine, EmbeddingOptions, EngineOptions};
    use cad_graph::WeightedGraph;

    fn graph() -> WeightedGraph {
        WeightedGraph::from_edges(
            7,
            &[
                (0, 1, 1.5),
                (1, 2, 0.75),
                (2, 3, 2.0),
                (3, 4, 1.0),
                (0, 4, 0.5),
                (5, 6, 3.0), // second component: exercises pinv fallback + Inf distances
            ],
        )
        .unwrap()
    }

    fn engines() -> Vec<EngineOptions> {
        vec![
            EngineOptions::Exact,
            EngineOptions::Approximate(EmbeddingOptions {
                k: 12,
                ..Default::default()
            }),
            EngineOptions::ShortestPath,
            EngineOptions::Corrected,
        ]
    }

    #[test]
    fn every_backend_round_trips_bit_identically() {
        let g = graph();
        for opts in engines() {
            let fresh = CommuteTimeEngine::compute(&g, &opts).unwrap();
            let loaded = oracle_from_bytes(&oracle_to_bytes(fresh.as_ref())).unwrap();
            assert_eq!(loaded.kind(), fresh.kind());
            assert_eq!(loaded.n_nodes(), fresh.n_nodes());
            assert_eq!(
                loaded.volume().map(f64::to_bits),
                fresh.volume().map(f64::to_bits)
            );
            for i in 0..g.n_nodes() {
                for j in 0..g.n_nodes() {
                    assert_eq!(
                        loaded.distance(i, j).to_bits(),
                        fresh.distance(i, j).to_bits(),
                        "{} distance({i}, {j})",
                        fresh.kind().name()
                    );
                }
            }
        }
    }

    #[test]
    fn loaded_oracle_reports_zero_cost_stats() {
        let g = graph();
        let fresh = CommuteTimeEngine::compute(&g, &EngineOptions::Exact).unwrap();
        let loaded = oracle_from_bytes(&oracle_to_bytes(fresh.as_ref())).unwrap();
        let stats = loaded.build_stats().expect("loaded oracles keep stats");
        assert_eq!(stats.backend, "exact");
        assert_eq!(stats.build_secs, 0.0);
        assert!(stats.solves.is_empty());
    }

    #[test]
    fn damaged_artifacts_error_instead_of_panicking() {
        let g = graph();
        let bytes = oracle_to_bytes(
            CommuteTimeEngine::compute(&g, &EngineOptions::Exact)
                .unwrap()
                .as_ref(),
        );
        // Truncation at every prefix length.
        for cut in 0..bytes.len().min(64) {
            assert!(oracle_from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Trailing garbage.
        let mut extended = bytes.clone();
        extended.push(7);
        assert!(oracle_from_bytes(&extended).is_err());
        // Unknown tag.
        let mut bad_tag = bytes.clone();
        bad_tag[12] = 9;
        assert!(oracle_from_bytes(&bad_tag).is_err());
        // Wrong magic and version.
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'Z';
        assert!(oracle_from_bytes(&bad_magic).is_err());
        let mut bad_version = bytes;
        bad_version[8] = 42;
        assert!(oracle_from_bytes(&bad_version).is_err());
    }
}
