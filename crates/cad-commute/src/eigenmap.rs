//! Laplacian eigenmap embeddings (paper Figure 2).
//!
//! The paper visualizes the toy graphs at `t` and `t+1` by plotting the
//! second (Fiedler) and third eigenvectors of the Laplacian — commute
//! distance is (up to scaling by `1/λ`) the Euclidean distance in the
//! space spanned by those eigenvectors, so structural changes show up as
//! point movements in the 2-D embedding.

use crate::Result;
use cad_graph::{GraphError, WeightedGraph};
use cad_linalg::eig::{jacobi_eigen, lanczos_extremal, JacobiOptions, LanczosOptions, Which};

/// `dims`-dimensional Laplacian eigenmap: coordinates of node `i` are
/// `(v_2[i], …, v_{dims+1}[i])`, the eigenvectors of `L = D − A` for the
/// smallest non-trivial eigenvalues (ascending). `O(n³)` — visualization
/// of small graphs only.
pub fn laplacian_eigenmap(g: &WeightedGraph, dims: usize) -> Result<Vec<Vec<f64>>> {
    let n = g.n_nodes();
    if dims == 0 || dims >= n {
        return Err(GraphError::InvalidInput(format!(
            "eigenmap dims must satisfy 0 < dims < n; got dims={dims}, n={n}"
        )));
    }
    let l = g.laplacian_dense();
    let eig = jacobi_eigen(&l, JacobiOptions::default()).map_err(GraphError::from)?;
    // Skip the trivial constant eigenvector(s): one per component; the
    // plot convention of the paper skips exactly the first.
    let coords: Vec<Vec<f64>> = (0..n)
        .map(|i| (1..=dims).map(|d| eig.vectors.get(i, d)).collect())
        .collect();
    Ok(coords)
}

/// Like [`laplacian_eigenmap`] but via sparse Lanczos iteration —
/// `O(dims · m)` per step instead of a dense `O(n³)` decomposition, so
/// Figure 2-style embeddings stay feasible on large graphs.
///
/// The graph's per-component constant null vectors are deflated, so the
/// returned coordinates start at the Fiedler direction exactly like the
/// dense route.
pub fn laplacian_eigenmap_sparse(g: &WeightedGraph, dims: usize) -> Result<Vec<Vec<f64>>> {
    let n = g.n_nodes();
    if dims == 0 || dims >= n {
        return Err(GraphError::InvalidInput(format!(
            "eigenmap dims must satisfy 0 < dims < n; got dims={dims}, n={n}"
        )));
    }
    let l = g.laplacian();
    // Deflate one indicator vector per connected component.
    let (comp, n_comp) = g.components();
    let mut indicators = vec![vec![0.0; n]; n_comp];
    for (i, &c) in comp.iter().enumerate() {
        indicators[c as usize][i] = 1.0;
    }
    let deflate: Vec<&[f64]> = indicators.iter().map(|v| v.as_slice()).collect();
    let (_, vecs) = lanczos_extremal(
        &l,
        dims,
        Which::Smallest,
        &deflate,
        LanczosOptions::default(),
    )
    .map_err(GraphError::from)?;
    Ok((0..n)
        .map(|i| vecs.iter().map(|v| v[i]).collect())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_cluster_graph_separates_in_fiedler_coordinate() {
        // Two dense K3s joined by one weak edge: the Fiedler vector has
        // opposite signs on the two clusters.
        let g = WeightedGraph::from_edges(
            6,
            &[
                (0, 1, 2.0),
                (0, 2, 2.0),
                (1, 2, 2.0),
                (3, 4, 2.0),
                (3, 5, 2.0),
                (4, 5, 2.0),
                (2, 3, 0.1),
            ],
        )
        .unwrap();
        let coords = laplacian_eigenmap(&g, 2).unwrap();
        let f: Vec<f64> = coords.iter().map(|c| c[0]).collect();
        assert!(f[0] * f[3] < 0.0, "clusters on the same side: {f:?}");
        assert!(f[0].signum() == f[1].signum() && f[1].signum() == f[2].signum());
        assert!(f[3].signum() == f[4].signum() && f[4].signum() == f[5].signum());
    }

    #[test]
    fn dimensions_validated() {
        let g = WeightedGraph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        assert!(laplacian_eigenmap(&g, 0).is_err());
        assert!(laplacian_eigenmap(&g, 3).is_err());
        let c = laplacian_eigenmap(&g, 2).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c[0].len(), 2);
    }

    #[test]
    fn sparse_route_matches_dense_route() {
        // Compare embedding *distances* (coordinates are only defined up
        // to sign/rotation within eigenspaces, distances are not).
        let edges: Vec<(usize, usize, f64)> = (0..19)
            .map(|i| (i, i + 1, 1.0 + 0.1 * (i % 3) as f64))
            .chain([(0usize, 10usize, 0.4)])
            .collect();
        let g = WeightedGraph::from_edges(20, &edges).unwrap();
        let dense = laplacian_eigenmap(&g, 2).unwrap();
        let sparse = laplacian_eigenmap_sparse(&g, 2).unwrap();
        let dist = |e: &Vec<Vec<f64>>, i: usize, j: usize| {
            e[i].iter()
                .zip(&e[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt()
        };
        for i in 0..20 {
            for j in (i + 1)..20 {
                let (a, b) = (dist(&dense, i, j), dist(&sparse, i, j));
                assert!((a - b).abs() < 1e-6 * a.max(1.0), "({i},{j}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn sparse_route_handles_disconnected() {
        let g = WeightedGraph::from_edges(6, &[(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (4, 5, 1.0)])
            .unwrap();
        let coords = laplacian_eigenmap_sparse(&g, 2).unwrap();
        assert_eq!(coords.len(), 6);
        assert!(coords.iter().flatten().all(|v| v.is_finite()));
    }

    #[test]
    fn eigenmap_distance_tracks_graph_distance() {
        // On a path, eigenmap distance grows with hop distance.
        let g = WeightedGraph::from_edges(5, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)])
            .unwrap();
        let c = laplacian_eigenmap(&g, 1).unwrap();
        let d = |i: usize, j: usize| (c[i][0] - c[j][0]).abs();
        assert!(d(0, 4) > d(0, 2));
        assert!(d(0, 2) > d(0, 1));
    }
}
