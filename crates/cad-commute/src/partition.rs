//! Partition configuration types — the spec/telemetry vocabulary shared
//! by the detectors, the CLI, the serve layer and the `cad-part`
//! machinery.
//!
//! Only *configuration* lives here: [`PartitionSpec`] (what the caller
//! asked for), [`PartitionMode`] (how blocks are formed) and
//! [`PartitionInfo`] (what a built partitioned oracle reports back).
//! The partitioner and the block-solve machinery themselves are in the
//! `cad-part` crate, which depends on this one — keeping these types
//! here lets `cad-core`'s options and the [`crate::OracleProvider`]
//! seam mention partitioning without a dependency cycle.

/// How the graph is split into blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PartitionMode {
    /// Pick [`PartitionMode::Components`] when the graph has at least as
    /// many connected components as the requested block count, otherwise
    /// [`PartitionMode::Bfs`].
    #[default]
    Auto,
    /// One block per connected component. No cut edges, so partitioned
    /// results are *exact*: block solves are independent per-component
    /// solves with no boundary correction at all.
    Components,
    /// Greedy balanced splitter: consecutive chunks of a deterministic
    /// BFS order (per component), targeting the requested block count.
    /// Cross-block edges form the reported edge-cut; their endpoints
    /// become the boundary-vertex interface set.
    Bfs,
}

impl PartitionMode {
    /// Stable lowercase name (CLI/report/fingerprint formatting).
    pub fn name(self) -> &'static str {
        match self {
            PartitionMode::Auto => "auto",
            PartitionMode::Components => "components",
            PartitionMode::Bfs => "bfs",
        }
    }

    /// Parse the CLI/serve spelling produced by [`PartitionMode::name`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(PartitionMode::Auto),
            "components" => Some(PartitionMode::Components),
            "bfs" => Some(PartitionMode::Bfs),
            _ => None,
        }
    }
}

/// What the caller asked the partitioner for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PartitionSpec {
    /// Target block count (≥ 1). [`PartitionMode::Components`] ignores
    /// it beyond validation; [`PartitionMode::Bfs`] splits each
    /// component into chunks of `⌈n / blocks⌉`, so the realised count
    /// can differ slightly from the target.
    pub blocks: usize,
    /// How blocks are formed.
    pub mode: PartitionMode,
}

impl PartitionSpec {
    /// A spec targeting `blocks` blocks in [`PartitionMode::Auto`].
    pub fn auto(blocks: usize) -> Self {
        PartitionSpec {
            blocks,
            mode: PartitionMode::Auto,
        }
    }

    /// Stable layout fingerprint for cache keying: the requested mode
    /// and block count. Two requests with different fingerprints must
    /// never share a cached artifact (`cad-store` folds this into the
    /// content address next to the snapshot×engine key).
    pub fn fingerprint(&self) -> String {
        format!("part({},{})", self.mode.name(), self.blocks)
    }
}

/// What a built partitioned oracle reports about its layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PartitionInfo {
    /// Realised block count.
    pub blocks: usize,
    /// Number of cut (cross-block) edges. `0` exactly when every block
    /// is a union of connected components — the exactness guarantee.
    pub boundary_edges: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names_round_trip() {
        for mode in [
            PartitionMode::Auto,
            PartitionMode::Components,
            PartitionMode::Bfs,
        ] {
            assert_eq!(PartitionMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(PartitionMode::parse("metis"), None);
    }

    #[test]
    fn fingerprints_separate_layouts() {
        let a = PartitionSpec::auto(4).fingerprint();
        let b = PartitionSpec::auto(8).fingerprint();
        let c = PartitionSpec {
            blocks: 4,
            mode: PartitionMode::Bfs,
        }
        .fingerprint();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, PartitionSpec::auto(4).fingerprint());
    }
}
