//! One interface over the exact and approximate commute-time engines.

use crate::embedding::{CommuteEmbedding, EmbeddingOptions};
use crate::exact::ExactCommute;
use crate::shortest::ShortestPathTable;
use crate::Result;
use cad_graph::WeightedGraph;

/// Which engine to use and its parameters.
#[derive(Debug, Clone, Copy)]
pub enum EngineOptions {
    /// Exact `O(n³)` computation via `L⁺` (paper eq. 3). The paper uses
    /// this for the Enron graph (151 nodes); sensible up to a few
    /// thousand nodes.
    Exact,
    /// Khoa–Chawla embedding — the `O(n log n)` path (paper §3.1).
    Approximate(EmbeddingOptions),
    /// Pick [`EngineOptions::Exact`] when `n ≤ threshold`, otherwise the
    /// given approximation — mirroring the paper's practice.
    Auto {
        /// Node-count cutover between exact and approximate.
        threshold: usize,
        /// Approximation parameters used above the threshold.
        embedding: EmbeddingOptions,
    },
    /// Shortest-path distance instead of commute time — the alternative
    /// node distance the paper rejects in §3.1; provided for ablation.
    ShortestPath,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions::Auto { threshold: 512, embedding: EmbeddingOptions::default() }
    }
}

/// A computed commute-time oracle for a single graph instance.
pub enum CommuteTimeEngine {
    /// Exact table.
    Exact(ExactCommute),
    /// Approximate embedding.
    Approximate(CommuteEmbedding),
    /// All-pairs shortest paths (ablation engine).
    ShortestPath(ShortestPathTable),
}

impl CommuteTimeEngine {
    /// Compute the engine for one graph instance.
    pub fn compute(g: &WeightedGraph, opts: &EngineOptions) -> Result<Self> {
        match opts {
            EngineOptions::Exact => Ok(CommuteTimeEngine::Exact(ExactCommute::compute(g)?)),
            EngineOptions::Approximate(e) => {
                Ok(CommuteTimeEngine::Approximate(CommuteEmbedding::compute(g, e)?))
            }
            EngineOptions::Auto { threshold, embedding } => {
                if g.n_nodes() <= *threshold {
                    Ok(CommuteTimeEngine::Exact(ExactCommute::compute(g)?))
                } else {
                    Ok(CommuteTimeEngine::Approximate(CommuteEmbedding::compute(g, embedding)?))
                }
            }
            EngineOptions::ShortestPath => {
                Ok(CommuteTimeEngine::ShortestPath(ShortestPathTable::compute(g)?))
            }
        }
    }

    /// The node distance `d(i, j)` this engine implements: commute time
    /// for the commute engines, path length for the shortest-path
    /// ablation engine. This is the accessor the CAD scorer uses.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        match self {
            CommuteTimeEngine::Exact(e) => e.commute_distance(i, j),
            CommuteTimeEngine::Approximate(e) => e.commute_distance(i, j),
            CommuteTimeEngine::ShortestPath(t) => t.distance(i, j),
        }
    }

    /// Commute-time distance `c(i, j)`.
    ///
    /// # Panics
    /// Panics for the shortest-path ablation engine, which has no
    /// commute semantics — use [`CommuteTimeEngine::distance`] there.
    pub fn commute_distance(&self, i: usize, j: usize) -> f64 {
        match self {
            CommuteTimeEngine::Exact(e) => e.commute_distance(i, j),
            CommuteTimeEngine::Approximate(e) => e.commute_distance(i, j),
            CommuteTimeEngine::ShortestPath(_) => {
                panic!("shortest-path engine has no commute distance; use distance()")
            }
        }
    }

    /// Effective resistance `r_eff(i, j) = c(i, j) / V_G`.
    ///
    /// # Panics
    /// Panics for the shortest-path ablation engine.
    pub fn resistance(&self, i: usize, j: usize) -> f64 {
        match self {
            CommuteTimeEngine::Exact(e) => e.resistance(i, j),
            CommuteTimeEngine::Approximate(e) => e.resistance(i, j),
            CommuteTimeEngine::ShortestPath(_) => {
                panic!("shortest-path engine has no resistance; use distance()")
            }
        }
    }

    /// Number of nodes covered.
    pub fn n_nodes(&self) -> usize {
        match self {
            CommuteTimeEngine::Exact(e) => e.n_nodes(),
            CommuteTimeEngine::Approximate(e) => e.n_nodes(),
            CommuteTimeEngine::ShortestPath(t) => t.n_nodes(),
        }
    }

    /// True when backed by the exact table.
    pub fn is_exact(&self) -> bool {
        matches!(self, CommuteTimeEngine::Exact(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> WeightedGraph {
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        WeightedGraph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn auto_picks_exact_for_small() {
        let g = path(10);
        let e = CommuteTimeEngine::compute(&g, &EngineOptions::default()).unwrap();
        assert!(e.is_exact());
        assert_eq!(e.n_nodes(), 10);
    }

    #[test]
    fn auto_picks_approximate_above_threshold() {
        let g = path(20);
        let opts = EngineOptions::Auto {
            threshold: 10,
            embedding: EmbeddingOptions { k: 64, ..Default::default() },
        };
        let e = CommuteTimeEngine::compute(&g, &opts).unwrap();
        assert!(!e.is_exact());
    }

    #[test]
    fn engines_agree_on_small_graph() {
        let g = path(8);
        let exact = CommuteTimeEngine::compute(&g, &EngineOptions::Exact).unwrap();
        let approx = CommuteTimeEngine::compute(
            &g,
            &EngineOptions::Approximate(EmbeddingOptions { k: 500, ..Default::default() }),
        )
        .unwrap();
        for i in 0..8 {
            for j in (i + 1)..8 {
                let a = approx.commute_distance(i, j);
                let e = exact.commute_distance(i, j);
                assert!((a - e).abs() < 0.3 * e, "({i},{j}): {a} vs {e}");
            }
        }
    }

    #[test]
    fn resistance_consistent_with_commute() {
        let g = path(5);
        let e = CommuteTimeEngine::compute(&g, &EngineOptions::Exact).unwrap();
        let vg = g.volume();
        assert!((e.commute_distance(0, 4) - vg * e.resistance(0, 4)).abs() < 1e-9);
    }
}
