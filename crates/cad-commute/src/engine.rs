//! Engine selection: a thin factory from [`EngineOptions`] to a boxed
//! [`DistanceOracle`].

use crate::corrected::CorrectedCommute;
use crate::embedding::{CommuteEmbedding, EmbeddingOptions};
use crate::exact::ExactCommute;
use crate::oracle::SharedOracle;
use crate::shortest::ShortestPathTable;
use crate::Result;
use cad_graph::WeightedGraph;

/// Which engine to use and its parameters.
#[derive(Debug, Clone, Copy)]
pub enum EngineOptions {
    /// Exact `O(n³)` computation via `L⁺` (paper eq. 3). The paper uses
    /// this for the Enron graph (151 nodes); sensible up to a few
    /// thousand nodes.
    Exact,
    /// Khoa–Chawla embedding — the `O(n log n)` path (paper §3.1).
    Approximate(EmbeddingOptions),
    /// Pick [`EngineOptions::Exact`] when `n ≤ threshold`, otherwise the
    /// given approximation — mirroring the paper's practice.
    Auto {
        /// Node-count cutover between exact and approximate.
        threshold: usize,
        /// Approximation parameters used above the threshold.
        embedding: EmbeddingOptions,
    },
    /// Shortest-path distance instead of commute time — the alternative
    /// node distance the paper rejects in §3.1; provided for ablation.
    ShortestPath,
    /// Amplified (von Luxburg-corrected) commute distance — removes the
    /// `1/d_i + 1/d_j` degeneracy raw commute time develops on dense
    /// graphs. Exact `O(n³)` path.
    Corrected,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions::Auto {
            threshold: 512,
            embedding: EmbeddingOptions::default(),
        }
    }
}

/// Factory for per-instance distance oracles.
///
/// Formerly a closed three-variant enum; now every backend is a
/// first-class [`crate::DistanceOracle`] impl and this type only decides
/// which one to build. Queries go through the trait object it returns.
pub struct CommuteTimeEngine;

impl CommuteTimeEngine {
    /// Build the oracle for one graph instance.
    pub fn compute(g: &WeightedGraph, opts: &EngineOptions) -> Result<SharedOracle> {
        let _span = cad_obs::span!("oracle_build");
        cad_obs::counters::ORACLE_BUILDS.inc();
        let (oracle, secs) = cad_obs::time_it(|| Self::compute_inner(g, opts));
        cad_obs::histograms::ORACLE_BUILD_SECS.observe(secs);
        oracle
    }

    fn compute_inner(g: &WeightedGraph, opts: &EngineOptions) -> Result<SharedOracle> {
        match opts {
            EngineOptions::Exact => Ok(Box::new(ExactCommute::compute(g)?)),
            EngineOptions::Approximate(e) => Ok(Box::new(CommuteEmbedding::compute(g, e)?)),
            EngineOptions::Auto {
                threshold,
                embedding,
            } => {
                if g.n_nodes() <= *threshold {
                    Ok(Box::new(ExactCommute::compute(g)?))
                } else {
                    Ok(Box::new(CommuteEmbedding::compute(g, embedding)?))
                }
            }
            EngineOptions::ShortestPath => Ok(Box::new(ShortestPathTable::compute(g)?)),
            EngineOptions::Corrected => Ok(Box::new(CorrectedCommute::compute(g)?)),
        }
    }
}

/// A source of per-instance distance oracles — the seam where the
/// persistent oracle cache plugs into the detectors.
///
/// `CadDetector`/`OnlineCad` in `cad-core` accept an implementation
/// and call it once per instance; the default behaviour (no provider)
/// builds fresh via [`CommuteTimeEngine::compute`]. The `cad-store`
/// crate implements this for its content-addressed cache, loading
/// serialized artifacts instead of rebuilding when the (snapshot,
/// engine, params) key already exists.
///
/// Contract: the returned oracle must answer queries bit-identically
/// to `CommuteTimeEngine::compute(g, opts)` — providers may change
/// *where* an oracle comes from, never *what* it computes.
/// For *partitioned* requests ([`OracleProvider::oracle_partitioned`])
/// the contract weakens from bit-identity to the documented
/// `cad-part` tolerance: the returned oracle must answer exactly as a
/// fresh `PartitionedOracle` build for the same `(g, opts, spec)` would
/// — which is itself within `PART_REL_TOL` of the monolithic oracle,
/// and exact when blocks are connected components.
pub trait OracleProvider: Send + Sync {
    /// Produce the oracle for instance `t` of a sequence.
    fn oracle(&self, t: usize, g: &WeightedGraph, opts: &EngineOptions) -> Result<SharedOracle>;

    /// Produce a *block-partitioned* oracle for instance `t`, laid out
    /// per `spec` with per-block work fanned out over `threads`.
    ///
    /// Only providers that know how to build or cache partitioned
    /// artifacts override this (the `cad-store` oracle cache does); the
    /// default declines, so callers without such a provider route to a
    /// direct `cad-part` build instead.
    fn oracle_partitioned(
        &self,
        t: usize,
        g: &WeightedGraph,
        opts: &EngineOptions,
        spec: crate::partition::PartitionSpec,
        threads: usize,
    ) -> Result<SharedOracle> {
        let _ = (t, g, opts, spec, threads);
        Err(cad_graph::GraphError::InvalidInput(
            "this oracle provider does not support partitioned builds".into(),
        ))
    }
}

/// The trivial provider: always build fresh.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildFresh;

impl OracleProvider for BuildFresh {
    fn oracle(&self, _t: usize, g: &WeightedGraph, opts: &EngineOptions) -> Result<SharedOracle> {
        CommuteTimeEngine::compute(g, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::OracleKind;

    fn path(n: usize) -> WeightedGraph {
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        WeightedGraph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn auto_picks_exact_for_small() {
        let g = path(10);
        let e = CommuteTimeEngine::compute(&g, &EngineOptions::default()).unwrap();
        assert!(e.is_exact());
        assert_eq!(e.kind(), OracleKind::Exact);
        assert_eq!(e.n_nodes(), 10);
    }

    #[test]
    fn auto_picks_approximate_above_threshold() {
        let g = path(20);
        let opts = EngineOptions::Auto {
            threshold: 10,
            embedding: EmbeddingOptions {
                k: 64,
                ..Default::default()
            },
        };
        let e = CommuteTimeEngine::compute(&g, &opts).unwrap();
        assert!(!e.is_exact());
        assert_eq!(e.kind(), OracleKind::Embedding);
    }

    #[test]
    fn auto_cutover_is_inclusive_at_threshold() {
        // n == threshold stays exact; n == threshold + 1 switches.
        let opts = |threshold| EngineOptions::Auto {
            threshold,
            embedding: EmbeddingOptions {
                k: 16,
                ..Default::default()
            },
        };
        let at = CommuteTimeEngine::compute(&path(12), &opts(12)).unwrap();
        assert_eq!(at.kind(), OracleKind::Exact);
        let above = CommuteTimeEngine::compute(&path(13), &opts(12)).unwrap();
        assert_eq!(above.kind(), OracleKind::Embedding);
    }

    #[test]
    fn every_option_builds_its_oracle_kind() {
        let g = path(9);
        let cases: [(EngineOptions, OracleKind); 4] = [
            (EngineOptions::Exact, OracleKind::Exact),
            (
                EngineOptions::Approximate(EmbeddingOptions {
                    k: 8,
                    ..Default::default()
                }),
                OracleKind::Embedding,
            ),
            (EngineOptions::ShortestPath, OracleKind::ShortestPath),
            (EngineOptions::Corrected, OracleKind::Corrected),
        ];
        for (opts, want) in cases {
            let e = CommuteTimeEngine::compute(&g, &opts).unwrap();
            assert_eq!(e.kind(), want);
            assert_eq!(e.n_nodes(), 9);
        }
    }

    #[test]
    fn engines_agree_on_small_graph() {
        let g = path(8);
        let exact = CommuteTimeEngine::compute(&g, &EngineOptions::Exact).unwrap();
        let approx = CommuteTimeEngine::compute(
            &g,
            &EngineOptions::Approximate(EmbeddingOptions {
                k: 500,
                ..Default::default()
            }),
        )
        .unwrap();
        for i in 0..8 {
            for j in (i + 1)..8 {
                let a = approx.commute_distance(i, j);
                let e = exact.commute_distance(i, j);
                assert!((a - e).abs() < 0.3 * e, "({i},{j}): {a} vs {e}");
            }
        }
    }

    #[test]
    fn resistance_consistent_with_commute() {
        let g = path(5);
        let e = CommuteTimeEngine::compute(&g, &EngineOptions::Exact).unwrap();
        let vg = g.volume();
        assert!((e.commute_distance(0, 4) - vg * e.resistance(0, 4)).abs() < 1e-9);
    }
}
