//! The `DistanceOracle` trait — one interface over every node-distance
//! backend.
//!
//! CAD's scorer only ever needs *some* node distance `d_t(i, j)` per
//! graph instance (paper §3.1 picks commute time, and ablates the
//! choice). Modelling that as a trait instead of a closed enum makes the
//! backends first-class and swappable: the exact `L⁺` table, the
//! Khoa–Chawla embedding, the shortest-path ablation table and the
//! von Luxburg-corrected variant all implement [`DistanceOracle`], and
//! future backends (incremental, sharded, remote) can join without
//! touching the scorer. [`crate::CommuteTimeEngine`] is the factory that
//! picks an implementation from [`crate::EngineOptions`].
//!
//! The trait requires `Send + Sync` so a built oracle can be shared
//! across the scoring worker pool (`cad_linalg::par`).

use crate::corrected::CorrectedCommute;
use crate::embedding::CommuteEmbedding;
use crate::exact::ExactCommute;
use crate::shortest::ShortestPathTable;
use crate::update::UpdatableOracle;

/// Which backend a [`DistanceOracle`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OracleKind {
    /// Exact commute times from the dense `L⁺` ([`ExactCommute`]).
    Exact,
    /// Khoa–Chawla approximate commute embedding ([`CommuteEmbedding`]).
    Embedding,
    /// All-pairs shortest paths ([`ShortestPathTable`]; ablation only).
    ShortestPath,
    /// Amplified (von Luxburg-corrected) commute distance
    /// ([`CorrectedCommute`]).
    Corrected,
}

impl OracleKind {
    /// Stable lowercase name (CLI/report formatting).
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::Exact => "exact",
            OracleKind::Embedding => "embedding",
            OracleKind::ShortestPath => "shortest-path",
            OracleKind::Corrected => "corrected",
        }
    }
}

/// A per-instance node-distance oracle.
///
/// `distance` is the scorer-facing accessor: whatever notion of node
/// distance the backend implements (commute time for the commute
/// backends, path length for the shortest-path ablation). The
/// commute-specific accessors ([`DistanceOracle::commute_distance`],
/// [`DistanceOracle::resistance`]) panic on backends without commute
/// semantics, preserving the old enum's contract.
pub trait DistanceOracle: Send + Sync {
    /// Number of nodes covered by this oracle.
    fn n_nodes(&self) -> usize;

    /// The node distance `d(i, j)` this backend implements.
    fn distance(&self, i: usize, j: usize) -> f64;

    /// Which backend this is.
    fn kind(&self) -> OracleKind;

    /// Graph volume `V_G`, when the backend has commute semantics.
    fn volume(&self) -> Option<f64> {
        None
    }

    /// Commute-time distance `c(i, j)`.
    ///
    /// # Panics
    /// Panics for backends without commute semantics (shortest path) —
    /// use [`DistanceOracle::distance`] there.
    fn commute_distance(&self, i: usize, j: usize) -> f64 {
        if self.volume().is_none() {
            panic!(
                "{} oracle has no commute distance; use distance()",
                self.kind().name()
            );
        }
        self.distance(i, j)
    }

    /// Effective resistance `r_eff(i, j) = c(i, j) / V_G`.
    ///
    /// # Panics
    /// Panics for backends without commute semantics.
    fn resistance(&self, i: usize, j: usize) -> f64 {
        match self.volume() {
            Some(v) => self.commute_distance(i, j) / v,
            None => panic!(
                "{} oracle has no resistance; use distance()",
                self.kind().name()
            ),
        }
    }

    /// True when backed by the exact `L⁺` table.
    fn is_exact(&self) -> bool {
        self.kind() == OracleKind::Exact
    }

    /// What the oracle's construction cost ([`cad_obs::OracleBuildStats`]):
    /// wall-clock build time, and for iterative backends the JL dimension
    /// plus per-solve convergence records. `None` only for backends that
    /// do not track construction (all in-tree backends do).
    fn build_stats(&self) -> Option<&cad_obs::OracleBuildStats> {
        None
    }

    /// Flatten this oracle to a self-describing byte artifact that
    /// [`crate::persist::oracle_from_bytes`] reconstitutes with
    /// bit-identical query behaviour. The `cad-store` oracle cache
    /// persists these next to the pack.
    fn to_store_bytes(&self) -> Vec<u8>;

    /// Deep-copy this oracle behind a fresh box.
    ///
    /// The incremental update path clones the previous snapshot's oracle
    /// before [`UpdatableOracle::apply_delta`] mutates it, so a
    /// [`crate::UpdateOutcome::RebuildRequired`] fallback can discard the
    /// half-updated clone without restore logic.
    fn clone_box(&self) -> SharedOracle;

    /// Downcast to the in-place update seam, when this backend supports
    /// delta updates. The default (`None`) routes callers to a fresh
    /// build.
    fn as_updatable(&mut self) -> Option<&mut dyn UpdatableOracle> {
        None
    }

    /// Layout facts for block-partitioned oracles (`cad-part`'s
    /// `PartitionedOracle`): realised block count and edge-cut size.
    /// Monolithic backends — everything in this crate — report `None`.
    fn partition_info(&self) -> Option<crate::partition::PartitionInfo> {
        None
    }
}

/// A boxed, shareable oracle — what [`crate::CommuteTimeEngine::compute`]
/// returns. `DistanceOracle: Send + Sync`, so the box crosses the scoring
/// worker pool freely.
pub type SharedOracle = Box<dyn DistanceOracle>;

impl DistanceOracle for ExactCommute {
    fn n_nodes(&self) -> usize {
        ExactCommute::n_nodes(self)
    }

    fn distance(&self, i: usize, j: usize) -> f64 {
        ExactCommute::commute_distance(self, i, j)
    }

    fn kind(&self) -> OracleKind {
        OracleKind::Exact
    }

    fn volume(&self) -> Option<f64> {
        Some(ExactCommute::volume(self))
    }

    fn commute_distance(&self, i: usize, j: usize) -> f64 {
        ExactCommute::commute_distance(self, i, j)
    }

    fn resistance(&self, i: usize, j: usize) -> f64 {
        // The inherent resistance, not commute/volume: bit-identical to
        // the pre-trait behaviour (no multiply/divide round trip).
        ExactCommute::resistance(self, i, j)
    }

    fn build_stats(&self) -> Option<&cad_obs::OracleBuildStats> {
        Some(ExactCommute::build_stats(self))
    }

    fn to_store_bytes(&self) -> Vec<u8> {
        crate::persist::exact_to_bytes(self)
    }

    fn clone_box(&self) -> SharedOracle {
        Box::new(self.clone())
    }

    fn as_updatable(&mut self) -> Option<&mut dyn UpdatableOracle> {
        Some(self)
    }
}

impl DistanceOracle for CommuteEmbedding {
    fn n_nodes(&self) -> usize {
        CommuteEmbedding::n_nodes(self)
    }

    fn distance(&self, i: usize, j: usize) -> f64 {
        CommuteEmbedding::commute_distance(self, i, j)
    }

    fn kind(&self) -> OracleKind {
        OracleKind::Embedding
    }

    fn volume(&self) -> Option<f64> {
        Some(CommuteEmbedding::volume(self))
    }

    fn commute_distance(&self, i: usize, j: usize) -> f64 {
        CommuteEmbedding::commute_distance(self, i, j)
    }

    fn resistance(&self, i: usize, j: usize) -> f64 {
        CommuteEmbedding::resistance(self, i, j)
    }

    fn build_stats(&self) -> Option<&cad_obs::OracleBuildStats> {
        Some(CommuteEmbedding::build_stats(self))
    }

    fn to_store_bytes(&self) -> Vec<u8> {
        crate::persist::embedding_to_bytes(self)
    }

    fn clone_box(&self) -> SharedOracle {
        Box::new(self.clone())
    }

    fn as_updatable(&mut self) -> Option<&mut dyn UpdatableOracle> {
        Some(self)
    }
}

impl DistanceOracle for ShortestPathTable {
    fn n_nodes(&self) -> usize {
        ShortestPathTable::n_nodes(self)
    }

    fn distance(&self, i: usize, j: usize) -> f64 {
        ShortestPathTable::distance(self, i, j)
    }

    fn kind(&self) -> OracleKind {
        OracleKind::ShortestPath
    }

    fn build_stats(&self) -> Option<&cad_obs::OracleBuildStats> {
        Some(ShortestPathTable::build_stats(self))
    }

    fn to_store_bytes(&self) -> Vec<u8> {
        crate::persist::shortest_to_bytes(self)
    }

    fn clone_box(&self) -> SharedOracle {
        Box::new(self.clone())
    }
}

impl DistanceOracle for CorrectedCommute {
    fn n_nodes(&self) -> usize {
        CorrectedCommute::n_nodes(self)
    }

    /// The corrected commute distance `V_G · r_amp(i, j)` — the same
    /// scale as the raw commute distance so score magnitudes stay
    /// comparable across engines.
    fn distance(&self, i: usize, j: usize) -> f64 {
        CorrectedCommute::volume(self) * CorrectedCommute::amplified(self, i, j)
    }

    fn kind(&self) -> OracleKind {
        OracleKind::Corrected
    }

    fn volume(&self) -> Option<f64> {
        Some(CorrectedCommute::volume(self))
    }

    fn resistance(&self, i: usize, j: usize) -> f64 {
        CorrectedCommute::amplified(self, i, j)
    }

    fn build_stats(&self) -> Option<&cad_obs::OracleBuildStats> {
        Some(CorrectedCommute::build_stats(self))
    }

    fn to_store_bytes(&self) -> Vec<u8> {
        crate::persist::corrected_to_bytes(self)
    }

    fn clone_box(&self) -> SharedOracle {
        Box::new(self.clone())
    }

    fn as_updatable(&mut self) -> Option<&mut dyn UpdatableOracle> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cad_graph::WeightedGraph;

    fn path(n: usize) -> WeightedGraph {
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        WeightedGraph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn exact_trait_matches_inherent() {
        let g = path(6);
        let e = ExactCommute::compute(&g).unwrap();
        let o: &dyn DistanceOracle = &e;
        assert_eq!(o.kind(), OracleKind::Exact);
        assert!(o.is_exact());
        assert_eq!(o.n_nodes(), 6);
        assert_eq!(o.volume(), Some(g.volume()));
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(
                    o.distance(i, j).to_bits(),
                    e.commute_distance(i, j).to_bits()
                );
                assert_eq!(o.resistance(i, j).to_bits(), e.resistance(i, j).to_bits());
            }
        }
    }

    #[test]
    fn embedding_trait_matches_inherent() {
        let g = path(8);
        let emb = CommuteEmbedding::compute(&g, &crate::EmbeddingOptions::default()).unwrap();
        let o: &dyn DistanceOracle = &emb;
        assert_eq!(o.kind(), OracleKind::Embedding);
        assert!(!o.is_exact());
        assert_eq!(
            o.distance(1, 5).to_bits(),
            emb.commute_distance(1, 5).to_bits()
        );
    }

    #[test]
    fn shortest_path_has_no_commute_semantics() {
        let g = path(4);
        let t = ShortestPathTable::compute(&g).unwrap();
        let o: &dyn DistanceOracle = &t;
        assert_eq!(o.kind(), OracleKind::ShortestPath);
        assert_eq!(o.volume(), None);
        assert_eq!(o.distance(0, 3), t.distance(0, 3));
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            o.commute_distance(0, 3)
        }))
        .is_err());
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| { o.resistance(0, 3) }))
                .is_err()
        );
    }

    #[test]
    fn corrected_scales_amplified_by_volume() {
        let g = path(5);
        let c = CorrectedCommute::compute(&g).unwrap();
        let o: &dyn DistanceOracle = &c;
        assert_eq!(o.kind(), OracleKind::Corrected);
        let vg = g.volume();
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(
                    o.distance(i, j).to_bits(),
                    (vg * c.amplified(i, j)).to_bits()
                );
            }
        }
    }

    #[test]
    fn boxed_oracle_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let g = path(3);
        let boxed: SharedOracle = Box::new(ExactCommute::compute(&g).unwrap());
        assert_send_sync(&boxed);
        assert_eq!(boxed.n_nodes(), 3);
    }

    #[test]
    fn every_backend_reports_build_stats() {
        let g = path(6);
        let oracles: Vec<SharedOracle> = vec![
            Box::new(ExactCommute::compute(&g).unwrap()),
            Box::new(CommuteEmbedding::compute(&g, &crate::EmbeddingOptions::default()).unwrap()),
            Box::new(ShortestPathTable::compute(&g).unwrap()),
            Box::new(CorrectedCommute::compute(&g).unwrap()),
        ];
        for o in &oracles {
            let stats = o.build_stats().expect("every in-tree backend tracks cost");
            assert_eq!(stats.backend, o.kind().name());
            assert!(stats.build_secs >= 0.0);
            if o.kind() == OracleKind::Embedding {
                assert_eq!(stats.jl_dim, Some(crate::EmbeddingOptions::default().k));
                assert_eq!(stats.solves.len(), stats.jl_dim.unwrap());
                assert!(stats.solves.iter().all(|s| s.converged));
            } else {
                assert_eq!(stats.jl_dim, None);
                assert!(stats.solves.is_empty());
            }
        }
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(OracleKind::Exact.name(), "exact");
        assert_eq!(OracleKind::Embedding.name(), "embedding");
        assert_eq!(OracleKind::ShortestPath.name(), "shortest-path");
        assert_eq!(OracleKind::Corrected.name(), "corrected");
    }
}
