//! Shortest-path node distances — the alternative the paper considers
//! and rejects (§3.1).
//!
//! The CAD framework only needs *some* node distance `d_t(i, j)`; the
//! paper picks commute time over shortest paths for robustness (commute
//! time averages over all paths; a shortest-path distance can jump
//! discontinuously when the argmin path switches) and scalability. This
//! engine makes the road not taken runnable, so the choice can be
//! ablated instead of believed: see `exp_distance_ablation`.

use crate::Result;
use cad_graph::algo::dijkstra_all_pairs;
use cad_graph::{GraphError, WeightedGraph};

/// All-pairs shortest-path distance table (edge length `1/weight`, the
/// similarity-graph convention used by CLC as well).
///
/// Precomputation is `O(n · m log n)` and storage `O(n²)` — small graphs
/// only, which is all the ablation needs.
#[derive(Debug, Clone)]
pub struct ShortestPathTable {
    n: usize,
    dist: Vec<f64>,
    build_stats: cad_obs::OracleBuildStats,
}

impl ShortestPathTable {
    /// Compute the table for one graph instance.
    pub fn compute(g: &WeightedGraph) -> Result<Self> {
        let n = g.n_nodes();
        if n.checked_mul(n).is_none() || n > 1 << 16 {
            return Err(GraphError::InvalidInput(format!(
                "all-pairs shortest paths is O(n²) memory; n = {n} is too large"
            )));
        }
        let (dist, build_secs) = cad_obs::time_it(|| {
            let rows = dijkstra_all_pairs(g);
            let mut dist = Vec::with_capacity(n * n);
            for row in rows {
                dist.extend(row);
            }
            dist
        });
        Ok(ShortestPathTable {
            n,
            dist,
            build_stats: cad_obs::OracleBuildStats::direct("shortest-path", build_secs),
        })
    }

    /// What the construction cost.
    pub fn build_stats(&self) -> &cad_obs::OracleBuildStats {
        &self.build_stats
    }

    /// Serialization view: `(n, row-major distance table)`.
    pub(crate) fn persist_parts(&self) -> (usize, &[f64]) {
        (self.n, &self.dist)
    }

    /// Rebuild from stored parts (bit-identical queries, zero-cost
    /// build stats).
    pub(crate) fn from_persist(n: usize, dist: Vec<f64>) -> Self {
        debug_assert_eq!(dist.len(), n * n);
        ShortestPathTable {
            n,
            dist,
            build_stats: cad_obs::OracleBuildStats::direct("shortest-path", 0.0),
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Shortest-path distance (`f64::INFINITY` across components).
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        self.dist[i * self.n + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_match_dijkstra_semantics() {
        let g = WeightedGraph::from_edges(4, &[(0, 1, 2.0), (1, 2, 1.0), (2, 3, 4.0)]).unwrap();
        let t = ShortestPathTable::compute(&g).unwrap();
        assert_eq!(t.n_nodes(), 4);
        assert_eq!(t.distance(0, 0), 0.0);
        assert!((t.distance(0, 3) - (0.5 + 1.0 + 0.25)).abs() < 1e-12);
        assert_eq!(t.distance(0, 3), t.distance(3, 0));
    }

    #[test]
    fn cross_component_is_infinite() {
        let g = WeightedGraph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let t = ShortestPathTable::compute(&g).unwrap();
        assert!(t.distance(0, 2).is_infinite());
    }

    #[test]
    fn shortest_path_is_brittle_commute_is_smooth() {
        // The §3.1 robustness argument in one test: two parallel routes
        // of nearly equal length. A tiny weight change flips which route
        // is shortest — the SP distance between the far nodes changes by
        // the route-length gap discontinuity pattern, while the commute
        // distance (averaging both routes) moves only marginally.
        let mk = |w_top: f64| {
            WeightedGraph::from_edges(4, &[(0, 1, w_top), (1, 3, w_top), (0, 2, 1.0), (2, 3, 1.0)])
                .unwrap()
        };
        let (a, b) = (mk(1.001), mk(0.999));
        let sp_a = ShortestPathTable::compute(&a).unwrap();
        let sp_b = ShortestPathTable::compute(&b).unwrap();
        let ct_a = crate::exact::ExactCommute::compute(&a).unwrap();
        let ct_b = crate::exact::ExactCommute::compute(&b).unwrap();
        let sp_rel = (sp_a.distance(0, 3) - sp_b.distance(0, 3)).abs() / sp_a.distance(0, 3);
        let ct_rel = (ct_a.commute_distance(0, 3) - ct_b.commute_distance(0, 3)).abs()
            / ct_a.commute_distance(0, 3);
        assert!(
            ct_rel < sp_rel,
            "commute ({ct_rel:.5}) should move less than shortest path ({sp_rel:.5})"
        );
    }
}
