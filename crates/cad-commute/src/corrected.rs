//! Amplified (von Luxburg-corrected) commute distance.
//!
//! On large dense graphs the raw commute time degenerates:
//! `r_eff(i, j) → 1/d_i + 1/d_j`, which contains no structural
//! information (von Luxburg, Radl & Hein, *Hitting and commute times in
//! large random neighborhood graphs*). The amplified commute distance
//! removes the degenerate part:
//!
//! ```text
//! r_amp(i, j) = r_eff(i, j) − 1/d_i − 1/d_j + 2 w_ij / (d_i d_j)
//! ```
//!
//! The CAD paper's evaluation graphs are sparse enough that the raw
//! commute time works (and it is what the paper uses — so it is what
//! [`crate::CommuteTimeEngine`] uses); this module ships the corrected
//! variant for the dense regimes a practitioner will eventually hit,
//! with a test demonstrating exactly the failure it repairs.

use crate::exact::ExactCommute;
use crate::update::{EdgeDelta, UpdatableOracle, UpdateOutcome};
use crate::Result;
use cad_graph::WeightedGraph;

/// Exact amplified commute distances for one graph instance.
#[derive(Debug, Clone)]
pub struct CorrectedCommute {
    exact: ExactCommute,
    degrees: Vec<f64>,
    /// Edge weights needed for the local `2w/(d_i d_j)` term.
    adjacency: cad_linalg::CsrMatrix,
    build_stats: cad_obs::OracleBuildStats,
}

impl CorrectedCommute {
    /// Compute from a graph (exact `O(n³)` path).
    pub fn compute(g: &WeightedGraph) -> Result<Self> {
        let (exact, build_secs) = cad_obs::time_it(|| ExactCommute::compute(g));
        Ok(CorrectedCommute {
            exact: exact?,
            degrees: g.degrees(),
            adjacency: g.adjacency().clone(),
            build_stats: cad_obs::OracleBuildStats::direct("corrected", build_secs),
        })
    }

    /// What the construction cost.
    pub fn build_stats(&self) -> &cad_obs::OracleBuildStats {
        &self.build_stats
    }

    /// Serialization view: `(inner exact oracle, degrees, adjacency)`.
    pub(crate) fn persist_parts(&self) -> (&ExactCommute, &[f64], &cad_linalg::CsrMatrix) {
        (&self.exact, &self.degrees, &self.adjacency)
    }

    /// Rebuild from stored parts (bit-identical queries, zero-cost
    /// build stats).
    pub(crate) fn from_persist(
        exact: ExactCommute,
        degrees: Vec<f64>,
        adjacency: cad_linalg::CsrMatrix,
    ) -> Self {
        CorrectedCommute {
            exact,
            degrees,
            adjacency,
            build_stats: cad_obs::OracleBuildStats::direct("corrected", 0.0),
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.exact.n_nodes()
    }

    /// Graph volume `V_G`.
    pub fn volume(&self) -> f64 {
        self.exact.volume()
    }

    /// The raw effective resistance (for comparison).
    pub fn raw_resistance(&self, i: usize, j: usize) -> f64 {
        self.exact.resistance(i, j)
    }

    /// The amplified resistance `r_amp(i, j)` (clamped at 0; it is
    /// non-negative up to rounding for i ≠ j).
    pub fn amplified(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        let (di, dj) = (self.degrees[i], self.degrees[j]);
        if di <= 0.0 || dj <= 0.0 {
            // Isolated endpoint: no degeneracy to remove.
            return self.exact.resistance(i, j);
        }
        let w = self.adjacency.get(i, j);
        (self.exact.resistance(i, j) - 1.0 / di - 1.0 / dj + 2.0 * w / (di * dj)).max(0.0)
    }
}

impl UpdatableOracle for CorrectedCommute {
    /// Delegates the `L⁺` maintenance to the inner exact oracle, then
    /// refreshes the local degree/adjacency views from the new snapshot
    /// (cheap relative to the rank-1 updates).
    fn apply_delta(&mut self, delta: &EdgeDelta) -> Result<UpdateOutcome> {
        let outcome = self.exact.apply_delta(delta)?;
        if let UpdateOutcome::Applied { .. } = outcome {
            self.degrees = delta.new.degrees();
            self.adjacency = delta.new.adjacency().clone();
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two dense cliques joined by a handful of bridges — the regime
    /// where raw resistance starts collapsing toward `1/d_i + 1/d_j`.
    fn dumbbell(k: usize, bridges: usize) -> WeightedGraph {
        let mut edges = Vec::new();
        for base in [0, k] {
            for i in 0..k {
                for j in (i + 1)..k {
                    edges.push((base + i, base + j, 1.0));
                }
            }
        }
        for b in 0..bridges {
            edges.push((b, k + b, 1.0));
        }
        WeightedGraph::from_edges(2 * k, &edges).expect("dumbbell")
    }

    #[test]
    fn correction_amplifies_cluster_contrast() {
        let g = dumbbell(20, 4);
        let c = CorrectedCommute::compute(&g).unwrap();
        // Pick non-bridge nodes on both sides.
        let (a, b, cross) = (10, 11, 30);
        let raw_ratio = c.raw_resistance(a, cross) / c.raw_resistance(a, b);
        let amp_ratio = c.amplified(a, cross) / c.amplified(a, b).max(1e-12);
        assert!(
            amp_ratio > 3.0 * raw_ratio,
            "correction should sharpen the cross/intra contrast: raw {raw_ratio:.2}, amplified {amp_ratio:.2}"
        );
    }

    #[test]
    fn raw_resistance_is_degree_dominated_in_cliques() {
        // Inside one dense clique, r_eff ≈ 1/d_i + 1/d_j: the degenerate
        // part is most of the value, so the amplified distance is small.
        let g = dumbbell(20, 4);
        let c = CorrectedCommute::compute(&g).unwrap();
        let raw = c.raw_resistance(5, 6);
        let local = 1.0 / 19.0 + 1.0 / 19.0; // intra degrees ≈ 19
        assert!(
            (raw - local).abs() < 0.4 * raw,
            "raw {raw} should be near the degenerate part {local}"
        );
        assert!(c.amplified(5, 6) < 0.5 * raw);
    }

    #[test]
    fn symmetric_and_zero_diagonal() {
        let g = dumbbell(8, 2);
        let c = CorrectedCommute::compute(&g).unwrap();
        for i in 0..16 {
            assert_eq!(c.amplified(i, i), 0.0);
            for j in 0..16 {
                assert!((c.amplified(i, j) - c.amplified(j, i)).abs() < 1e-10);
                assert!(c.amplified(i, j) >= 0.0);
            }
        }
    }

    #[test]
    fn isolated_nodes_fall_back_to_raw() {
        let g = WeightedGraph::from_edges(3, &[(0, 1, 1.0)]).unwrap();
        let c = CorrectedCommute::compute(&g).unwrap();
        assert_eq!(c.amplified(0, 2), c.raw_resistance(0, 2));
    }
}
