//! Exact commute times via the Laplacian pseudoinverse.

use crate::update::{EdgeDelta, RebuildReason, UpdatableOracle, UpdateOutcome, SM_DEN_TOL};
use crate::Result;
use cad_graph::{GraphError, WeightedGraph};
use cad_linalg::pinv::{laplacian_pinv_cholesky, pinv_edge_update, sym_pinv};
use cad_linalg::DenseMatrix;

/// Relative eigenvalue cutoff used when falling back to the eigen-based
/// pseudoinverse on disconnected graphs.
const PINV_CUTOFF: f64 = 1e-9;

/// Exact commute-time table for one graph instance.
///
/// Internally stores `L⁺` and the graph volume; queries are `O(1)`.
/// For pairs in *different* connected components the value returned is
/// `V_G (l⁺_ii + l⁺_jj)` — the natural pseudoinverse extension (the true
/// commute time is infinite). Construction is `O(n³)`: use
/// [`crate::embedding::CommuteEmbedding`] beyond a few thousand nodes.
#[derive(Debug, Clone)]
pub struct ExactCommute {
    pinv: DenseMatrix,
    volume: f64,
    build_stats: cad_obs::OracleBuildStats,
}

impl ExactCommute {
    /// Compute `L⁺` for the graph.
    ///
    /// Tries the cheap Cholesky identity (valid on connected graphs)
    /// first and falls back to the eigendecomposition route when the
    /// graph is disconnected.
    pub fn compute(g: &WeightedGraph) -> Result<Self> {
        let (pinv, build_secs) = cad_obs::time_it(|| {
            let l = g.laplacian_dense();
            if g.is_connected() {
                laplacian_pinv_cholesky(&l).or_else(|_| sym_pinv(&l, PINV_CUTOFF))
            } else {
                sym_pinv(&l, PINV_CUTOFF)
            }
        });
        Ok(ExactCommute {
            pinv: pinv?,
            volume: g.volume(),
            build_stats: cad_obs::OracleBuildStats::direct("exact", build_secs),
        })
    }

    /// What the construction cost.
    pub fn build_stats(&self) -> &cad_obs::OracleBuildStats {
        &self.build_stats
    }

    /// Serialization view: `(L⁺, V_G)` (see [`crate::persist`]).
    pub(crate) fn persist_parts(&self) -> (&DenseMatrix, f64) {
        (&self.pinv, self.volume)
    }

    /// Rebuild from stored parts. Queries are bit-identical to the
    /// oracle the parts came from; build stats report zero cost (no
    /// computation happened).
    pub(crate) fn from_persist(pinv: DenseMatrix, volume: f64) -> Self {
        ExactCommute {
            pinv,
            volume,
            build_stats: cad_obs::OracleBuildStats::direct("exact", 0.0),
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.pinv.nrows()
    }

    /// Graph volume `V_G`.
    pub fn volume(&self) -> f64 {
        self.volume
    }

    /// Effective resistance `r_eff(i, j) = l⁺_ii + l⁺_jj − 2 l⁺_ij`.
    pub fn resistance(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        // Clamp tiny negative rounding residue: resistance is a metric.
        (self.pinv.get(i, i) + self.pinv.get(j, j) - 2.0 * self.pinv.get(i, j)).max(0.0)
    }

    /// Commute time `c(i, j) = V_G · r_eff(i, j)` (paper eq. 3).
    pub fn commute_distance(&self, i: usize, j: usize) -> f64 {
        self.volume * self.resistance(i, j)
    }

    /// Full commute-time matrix (tests / toy-example reporting).
    pub fn full_matrix(&self) -> DenseMatrix {
        let n = self.n_nodes();
        DenseMatrix::from_fn(n, n, |i, j| self.commute_distance(i, j))
    }
}

impl UpdatableOracle for ExactCommute {
    /// Sherman–Morrison on `L⁺`: one rank-1 correction per changed edge
    /// (`O(n²)` each, versus the `O(n³)` rebuild). Algebraically exact
    /// while the component partition is unchanged — structural deltas
    /// and near-singular denominators request a rebuild instead.
    fn apply_delta(&mut self, delta: &EdgeDelta) -> Result<UpdateOutcome> {
        if delta.old.n_nodes() != self.n_nodes() {
            return Err(GraphError::InvalidInput(format!(
                "delta is over {} nodes but the oracle covers {}",
                delta.old.n_nodes(),
                self.n_nodes()
            )));
        }
        if delta.structural {
            return Ok(UpdateOutcome::RebuildRequired(RebuildReason::Structural));
        }
        for change in &delta.changes {
            let applied = pinv_edge_update(
                &mut self.pinv,
                change.u,
                change.v,
                change.d_weight(),
                SM_DEN_TOL,
            )
            .map_err(|e| GraphError::InvalidInput(e.to_string()))?;
            if !applied {
                return Ok(UpdateOutcome::RebuildRequired(RebuildReason::Degenerate));
            }
        }
        // Recompute from the new snapshot rather than accumulating
        // 2·δw — identical to what a fresh build would store.
        self.volume = delta.new.volume();
        Ok(UpdateOutcome::Applied {
            changes: delta.changes.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> WeightedGraph {
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        WeightedGraph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn path_graph_closed_form() {
        // Unit path: r_eff(i, j) = |i − j| (series resistors),
        // V_G = 2(n−1), so c(i, j) = 2(n−1)|i−j|.
        let n = 6;
        let g = path(n);
        let c = ExactCommute::compute(&g).unwrap();
        let vg = 2.0 * (n as f64 - 1.0);
        for i in 0..n {
            for j in 0..n {
                let want = vg * i.abs_diff(j) as f64;
                assert!(
                    (c.commute_distance(i, j) - want).abs() < 1e-8,
                    "c({i},{j}) = {} want {want}",
                    c.commute_distance(i, j)
                );
            }
        }
    }

    #[test]
    fn complete_graph_closed_form() {
        // K_n unit weights: r_eff = 2/n, V_G = n(n−1), c = 2(n−1).
        let n = 7;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                edges.push((i, j, 1.0));
            }
        }
        let g = WeightedGraph::from_edges(n, &edges).unwrap();
        let c = ExactCommute::compute(&g).unwrap();
        for i in 0..n {
            for j in (i + 1)..n {
                assert!((c.commute_distance(i, j) - 2.0 * (n as f64 - 1.0)).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn cycle_graph_closed_form() {
        // C_n unit weights: r_eff(i, j) = d(n−d)/n with d = hop distance,
        // V_G = 2n.
        let n = 8;
        let mut edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        edges.push((n - 1, 0, 1.0));
        let g = WeightedGraph::from_edges(n, &edges).unwrap();
        let c = ExactCommute::compute(&g).unwrap();
        for i in 0..n {
            for j in 0..n {
                let d = i.abs_diff(j).min(n - i.abs_diff(j)) as f64;
                let want = 2.0 * n as f64 * (d * (n as f64 - d) / n as f64);
                assert!((c.commute_distance(i, j) - want).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn weighted_edge_resistance() {
        // Single edge of weight w: r_eff = 1/w, V_G = 2w, c = 2.
        let g = WeightedGraph::from_edges(2, &[(0, 1, 5.0)]).unwrap();
        let c = ExactCommute::compute(&g).unwrap();
        assert!((c.resistance(0, 1) - 0.2).abs() < 1e-10);
        assert!((c.commute_distance(0, 1) - 2.0).abs() < 1e-10);
    }

    #[test]
    fn metric_properties() {
        let g = WeightedGraph::from_edges(
            5,
            &[
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 3, 1.0),
                (3, 4, 0.5),
                (0, 4, 1.5),
                (1, 3, 1.0),
            ],
        )
        .unwrap();
        let c = ExactCommute::compute(&g).unwrap();
        for i in 0..5 {
            assert_eq!(c.commute_distance(i, i), 0.0);
            for j in 0..5 {
                // Symmetry.
                assert!((c.commute_distance(i, j) - c.commute_distance(j, i)).abs() < 1e-9);
                // Non-negativity.
                assert!(c.commute_distance(i, j) >= 0.0);
                for k in 0..5 {
                    // Triangle inequality.
                    assert!(
                        c.commute_distance(i, j)
                            <= c.commute_distance(i, k) + c.commute_distance(k, j) + 1e-9
                    );
                }
            }
        }
    }

    #[test]
    fn disconnected_graph_uses_pinv_extension() {
        let g = WeightedGraph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let c = ExactCommute::compute(&g).unwrap();
        // Within components: single edge w=1 → r=1, V_G=4 → c=4.
        assert!((c.commute_distance(0, 1) - 4.0).abs() < 1e-8);
        assert!((c.commute_distance(2, 3) - 4.0).abs() < 1e-8);
        // Across components: finite pseudoinverse extension, larger than
        // the in-component resistance scale.
        let cross = c.commute_distance(0, 2);
        assert!(cross.is_finite());
        assert!(cross > 0.0);
    }

    #[test]
    fn full_matrix_agrees_with_queries() {
        let g = path(4);
        let c = ExactCommute::compute(&g).unwrap();
        let m = c.full_matrix();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m.get(i, j), c.commute_distance(i, j));
            }
        }
    }

    #[test]
    fn apply_delta_tracks_fresh_build() {
        let old = WeightedGraph::from_edges(
            5,
            &[
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 3, 1.0),
                (3, 4, 0.5),
                (0, 4, 1.5),
            ],
        )
        .unwrap();
        // Weight bump, an insertion and a removal, all non-structural.
        let new = WeightedGraph::from_edges(
            5,
            &[
                (0, 1, 1.0),
                (1, 2, 2.6),
                (2, 3, 1.0),
                (3, 4, 0.5),
                (0, 4, 1.5),
                (1, 3, 0.7),
            ],
        )
        .unwrap();
        let mut upd = ExactCommute::compute(&old).unwrap();
        let delta = EdgeDelta::between(&old, &new);
        assert_eq!(
            upd.apply_delta(&delta).unwrap(),
            UpdateOutcome::Applied { changes: 2 }
        );
        let fresh = ExactCommute::compute(&new).unwrap();
        assert_eq!(upd.volume().to_bits(), fresh.volume().to_bits());
        for i in 0..5 {
            for j in 0..5 {
                let (a, b) = (upd.commute_distance(i, j), fresh.commute_distance(i, j));
                assert!(
                    (a - b).abs() <= crate::update::UPDATE_REL_TOL * (1.0 + b),
                    "c({i},{j}): updated {a} vs fresh {b}"
                );
            }
        }
    }

    #[test]
    fn apply_delta_declines_structural_and_degenerate() {
        let old = WeightedGraph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let mut upd = ExactCommute::compute(&old).unwrap();

        // Bridge removal → structural (detected by the delta itself).
        let split = WeightedGraph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let delta = EdgeDelta::between(&old, &split);
        assert_eq!(
            ExactCommute::compute(&old)
                .unwrap()
                .apply_delta(&delta)
                .unwrap(),
            UpdateOutcome::RebuildRequired(RebuildReason::Structural)
        );

        // Mismatched oracle/delta dimensions are an error, not a fallback.
        let small = WeightedGraph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let bumped = WeightedGraph::from_edges(3, &[(0, 1, 2.0), (1, 2, 1.0)]).unwrap();
        let d3 = EdgeDelta::between(&small, &bumped);
        assert!(upd.apply_delta(&d3).is_err());
    }

    #[test]
    fn stronger_coupling_shrinks_commute_distance() {
        let weak = WeightedGraph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let strong = WeightedGraph::from_edges(3, &[(0, 1, 4.0), (1, 2, 1.0)]).unwrap();
        let cw = ExactCommute::compute(&weak).unwrap();
        let cs = ExactCommute::compute(&strong).unwrap();
        assert!(cs.resistance(0, 1) < cw.resistance(0, 1));
    }
}
