//! Commute-time distances on weighted undirected graphs.
//!
//! The commute time between nodes `i` and `j` is the expected number of
//! steps a random walk starting at `i` takes to reach `j` and return. It
//! is computable from the Moore–Penrose pseudoinverse `L⁺` of the graph
//! Laplacian (paper eq. 3):
//!
//! ```text
//! c(i, j) = V_G · (l⁺_ii + l⁺_jj − 2 l⁺_ij) = V_G · r_eff(i, j)
//! ```
//!
//! where `V_G` is the graph volume and `r_eff` the effective resistance.
//! Two engines implement this:
//!
//! * [`exact::ExactCommute`] — materializes `L⁺` (`O(n³)`); the reference
//!   implementation used for small graphs (the paper itself uses the
//!   exact computation for Enron's 151 nodes) and as ground truth in
//!   tests.
//! * [`embedding::CommuteEmbedding`] — the Khoa–Chawla approximation: a
//!   `k`-dimensional Euclidean embedding `z_i` such that
//!   `‖z_i − z_j‖² ≈ r_eff(i, j)` with JL-style guarantees for
//!   `k = O(log n / ε²)`, computed from `k` Laplacian solves. This is the
//!   `O(n log n)` path that makes CAD scale (paper §3.1).
//!
//! Every backend implements the [`oracle::DistanceOracle`] trait, so the
//! CAD scorer is generic over the distance notion; the
//! [`engine::CommuteTimeEngine`] factory picks an implementation from
//! [`engine::EngineOptions`] and returns it boxed.

#![warn(missing_docs)]

pub mod corrected;
pub mod eigenmap;
pub mod embedding;
pub mod engine;
pub mod exact;
pub mod oracle;
pub mod partition;
pub mod persist;
pub mod shortest;
pub mod update;

pub use corrected::CorrectedCommute;
pub use embedding::{CommuteEmbedding, EmbeddingOptions};
pub use engine::{BuildFresh, CommuteTimeEngine, EngineOptions, OracleProvider};
pub use exact::ExactCommute;
pub use oracle::{DistanceOracle, OracleKind, SharedOracle};
pub use partition::{PartitionInfo, PartitionMode, PartitionSpec};
pub use persist::{oracle_from_bytes, oracle_to_bytes};
pub use shortest::ShortestPathTable;
pub use update::{
    EdgeChange, EdgeDelta, RebuildReason, UpdatableOracle, UpdateOutcome, SM_DEN_TOL,
    UPDATE_REL_TOL,
};

/// Crate-wide result alias (errors come from the graph/linalg layers).
pub type Result<T> = std::result::Result<T, cad_graph::GraphError>;
