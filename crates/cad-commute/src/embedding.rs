//! The Khoa–Chawla approximate commute-time embedding.
//!
//! Spielman–Srivastava/Khoa–Chawla observation: the effective resistance
//! is a squared Euclidean distance,
//!
//! ```text
//! r_eff(i, j) = ‖W^{1/2} B L⁺ (e_i − e_j)‖²
//! ```
//!
//! with `B` the `m×n` signed incidence matrix and `W` the diagonal edge
//! weights. Johnson–Lindenstrauss then allows sketching the `m`-row
//! matrix with a `k×m` Rademacher projection `Q` (entries `±1/√k`):
//! the embedding `Z = Q W^{1/2} B L⁺` (a `k×n` matrix) preserves all
//! pairwise resistances within `1 ± ε` for `k = O(log n / ε²)`.
//!
//! Each of the `k` rows of `Z` costs one sparse right-hand-side build
//! (`y_r = (Q W^{1/2} B)_r`, streamed over the edge list with on-the-fly
//! Rademacher signs) and one Laplacian solve — `O(m)` plus the solver
//! cost. The paper's §3.1 uses a Spielman–Teng solver for the latter;
//! here it is preconditioned CG (DESIGN.md §5).

use crate::update::{EdgeDelta, RebuildReason, UpdatableOracle, UpdateOutcome};
use crate::Result;
use cad_graph::{GraphError, WeightedGraph};
use cad_linalg::rp::RademacherSource;
use cad_linalg::solve::{LaplacianSolver, LaplacianSolverOptions};

/// Options for [`CommuteEmbedding::compute`].
#[derive(Debug, Clone, Copy)]
pub struct EmbeddingOptions {
    /// Embedding dimension (the paper's `k_RP`; its experiments use
    /// `k = 50` and find results invariant for `k > 10`, Fig. 5).
    pub k: usize,
    /// Seed for the Rademacher projection.
    pub seed: u64,
    /// How the Laplacian systems are solved.
    pub solver: LaplacianSolverOptions,
    /// Worker threads for the `k` independent solves (1 = sequential).
    /// The result is bit-identical regardless of thread count: each row's
    /// right-hand side depends only on `(seed, row)`.
    pub threads: usize,
}

impl Default for EmbeddingOptions {
    fn default() -> Self {
        EmbeddingOptions {
            k: 50,
            seed: 0xCAD_5EED,
            solver: LaplacianSolverOptions::default(),
            threads: 1,
        }
    }
}

/// A `k`-dimensional commute-time embedding of one graph instance.
#[derive(Debug, Clone)]
pub struct CommuteEmbedding {
    /// Row-major `n × k` coordinates.
    coords: Vec<f64>,
    n: usize,
    k: usize,
    volume: f64,
    /// The options this embedding was computed with — needed to replay
    /// the Rademacher projection for delta updates. `None` when loaded
    /// from the store (the artifact carries no options), in which case
    /// updates fall back to a rebuild.
    opts: Option<EmbeddingOptions>,
    build_stats: cad_obs::OracleBuildStats,
}

impl CommuteEmbedding {
    /// Compute the embedding for `g`.
    pub fn compute(g: &WeightedGraph, opts: &EmbeddingOptions) -> Result<Self> {
        if opts.k == 0 {
            return Err(GraphError::InvalidInput(
                "embedding dimension k must be > 0".into(),
            ));
        }
        let build_start = std::time::Instant::now();
        let n = g.n_nodes();
        let laplacian = g.laplacian();
        let solver = LaplacianSolver::new(&laplacian, opts.solver)?;
        let signs = RademacherSource::new(opts.seed);
        let inv_sqrt_k = 1.0 / (opts.k as f64).sqrt();

        // One row of the sketch: build y_r = (Q W^{1/2} B)_r streamed over
        // edges — edge e = (u, v, w) contributes ±√w/√k to y[u] and ∓ to
        // y[v] — then solve L x_r = y_r. The row's PCG convergence record
        // travels back with the row so stats can be merged in row order
        // (deterministic regardless of worker count; see cad_obs::stats).
        let solve_row = |row: usize| -> Result<(Vec<f64>, cad_obs::SolveStats)> {
            cad_obs::counters::JL_PROJECTIONS.inc();
            let mut y = vec![0.0; n];
            for (e_idx, (u, v, w)) in g.edges().enumerate() {
                let q = signs.sign(row as u64, e_idx as u64) * inv_sqrt_k;
                let s = q * w.sqrt();
                y[u] += s;
                y[v] -= s;
            }
            solver.solve_stats(&y).map_err(GraphError::from)
        };

        // The k solves are independent and the solver is shared
        // immutably; the pool stripes the rows and returns them in row
        // order, so the result is thread-count invariant.
        let rows: Vec<(Vec<f64>, cad_obs::SolveStats)> =
            cad_linalg::par::par_tabulate_result(opts.k, opts.threads.max(1), solve_row)?;

        let mut coords = vec![0.0; n * opts.k];
        let mut solves = Vec::with_capacity(opts.k);
        for (row, (x, stats)) in rows.into_iter().enumerate() {
            solves.push(stats);
            for (i, xi) in x.into_iter().enumerate() {
                coords[i * opts.k + row] = xi;
            }
        }
        Ok(CommuteEmbedding {
            coords,
            n,
            k: opts.k,
            volume: g.volume(),
            opts: Some(*opts),
            build_stats: cad_obs::OracleBuildStats {
                backend: "embedding",
                build_secs: build_start.elapsed().as_secs_f64(),
                jl_dim: Some(opts.k),
                solves,
            },
        })
    }

    /// What the construction cost, including the per-row PCG records.
    pub fn build_stats(&self) -> &cad_obs::OracleBuildStats {
        &self.build_stats
    }

    /// Serialization view: `(coords, n, k, V_G)` (see [`crate::persist`]).
    pub(crate) fn persist_parts(&self) -> (&[f64], usize, usize, f64) {
        (&self.coords, self.n, self.k, self.volume)
    }

    /// Rebuild from stored parts. Queries are bit-identical; the build
    /// stats record zero seconds and no solves (loading performed none).
    pub(crate) fn from_persist(coords: Vec<f64>, n: usize, k: usize, volume: f64) -> Self {
        debug_assert_eq!(coords.len(), n * k);
        CommuteEmbedding {
            coords,
            n,
            k,
            volume,
            opts: None,
            build_stats: cad_obs::OracleBuildStats {
                backend: "embedding",
                build_secs: 0.0,
                jl_dim: Some(k),
                solves: Vec::new(),
            },
        }
    }

    /// Number of embedded nodes.
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Embedding dimension `k`.
    pub fn dim(&self) -> usize {
        self.k
    }

    /// Graph volume `V_G` captured at construction.
    pub fn volume(&self) -> f64 {
        self.volume
    }

    /// Embedded coordinates of node `i` (length `k`).
    pub fn coords(&self, i: usize) -> &[f64] {
        &self.coords[i * self.k..(i + 1) * self.k]
    }

    /// Approximate effective resistance `‖z_i − z_j‖²`.
    pub fn resistance(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        cad_linalg::vecops::dist2_sq(self.coords(i), self.coords(j))
    }

    /// Approximate commute time `V_G · ‖z_i − z_j‖²`.
    pub fn commute_distance(&self, i: usize, j: usize) -> f64 {
        self.volume * self.resistance(i, j)
    }
}

impl UpdatableOracle for CommuteEmbedding {
    /// Warm-started re-solve: each of the `k` sketch rows is re-solved
    /// against the new Laplacian using the current coordinates as the
    /// initial CG guess. The right-hand sides are rebuilt in full from
    /// the new edge list — the Rademacher signs are indexed by edge
    /// *position*, so insertions shift every later sign and an
    /// incremental RHS patch would diverge from what a fresh build uses.
    /// Convergence is judged against `‖y‖` exactly as in a cold solve,
    /// so the warm start changes iteration counts, not accuracy.
    fn apply_delta(&mut self, delta: &EdgeDelta) -> Result<UpdateOutcome> {
        let Some(opts) = self.opts else {
            // Loaded from the store without build options: the projection
            // cannot be replayed, so the update is not expressible.
            return Ok(UpdateOutcome::RebuildRequired(RebuildReason::Unsupported));
        };
        if delta.old.n_nodes() != self.n {
            return Err(GraphError::InvalidInput(format!(
                "delta is over {} nodes but the oracle covers {}",
                delta.old.n_nodes(),
                self.n
            )));
        }
        if delta.structural {
            return Ok(UpdateOutcome::RebuildRequired(RebuildReason::Structural));
        }
        let g = delta.new;
        let n = self.n;
        let laplacian = g.laplacian();
        let solver = LaplacianSolver::new(&laplacian, opts.solver)?;
        let signs = RademacherSource::new(opts.seed);
        let inv_sqrt_k = 1.0 / (self.k as f64).sqrt();

        let coords = &self.coords;
        let k = self.k;
        let solve_row = |row: usize| -> Result<(Vec<f64>, cad_obs::SolveStats)> {
            cad_obs::counters::JL_PROJECTIONS.inc();
            let mut y = vec![0.0; n];
            for (e_idx, (u, v, w)) in g.edges().enumerate() {
                let q = signs.sign(row as u64, e_idx as u64) * inv_sqrt_k;
                let s = q * w.sqrt();
                y[u] += s;
                y[v] -= s;
            }
            let x0: Vec<f64> = (0..n).map(|i| coords[i * k + row]).collect();
            solver.solve_from_stats(&y, &x0).map_err(GraphError::from)
        };
        let rows: Vec<(Vec<f64>, cad_obs::SolveStats)> =
            cad_linalg::par::par_tabulate_result(self.k, opts.threads.max(1), solve_row)?;

        for (row, (x, _stats)) in rows.into_iter().enumerate() {
            for (i, xi) in x.into_iter().enumerate() {
                self.coords[i * self.k + row] = xi;
            }
        }
        self.volume = g.volume();
        Ok(UpdateOutcome::Applied {
            changes: delta.changes.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactCommute;

    fn path(n: usize) -> WeightedGraph {
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        WeightedGraph::from_edges(n, &edges).unwrap()
    }

    fn opts(k: usize, seed: u64) -> EmbeddingOptions {
        EmbeddingOptions {
            k,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn path_resistances_approximated() {
        let g = path(10);
        // Large k for a tight statistical bound in a unit test.
        let emb = CommuteEmbedding::compute(&g, &opts(400, 1)).unwrap();
        for i in 0usize..10 {
            for j in 0usize..10 {
                let want = i.abs_diff(j) as f64;
                let got = emb.resistance(i, j);
                assert!(
                    (got - want).abs() <= 0.25 * want.max(0.3),
                    "r({i},{j}) = {got}, want {want}"
                );
            }
        }
    }

    #[test]
    fn agrees_with_exact_engine() {
        let g = WeightedGraph::from_edges(
            6,
            &[
                (0, 1, 2.0),
                (1, 2, 1.0),
                (2, 3, 3.0),
                (3, 4, 1.0),
                (4, 5, 2.0),
                (0, 5, 0.5),
                (1, 4, 1.0),
            ],
        )
        .unwrap();
        let exact = ExactCommute::compute(&g).unwrap();
        let emb = CommuteEmbedding::compute(&g, &opts(600, 2)).unwrap();
        for i in 0..6 {
            for j in (i + 1)..6 {
                let e = exact.commute_distance(i, j);
                let a = emb.commute_distance(i, j);
                assert!(
                    (a - e).abs() <= 0.25 * e,
                    "c({i},{j}): approx {a} vs exact {e}"
                );
            }
        }
    }

    #[test]
    fn error_shrinks_with_k() {
        let g = path(12);
        let exact = ExactCommute::compute(&g).unwrap();
        let mean_rel_err = |k: usize| {
            // Average over several seeds to smooth JL variance.
            let mut errs = Vec::new();
            for seed in 0..5 {
                let emb = CommuteEmbedding::compute(&g, &opts(k, seed)).unwrap();
                for i in 0..12 {
                    for j in (i + 1)..12 {
                        let e = exact.resistance(i, j);
                        errs.push((emb.resistance(i, j) - e).abs() / e);
                    }
                }
            }
            errs.iter().sum::<f64>() / errs.len() as f64
        };
        let coarse = mean_rel_err(8);
        let fine = mean_rel_err(256);
        assert!(
            fine < coarse,
            "error did not shrink: k=8 → {coarse}, k=256 → {fine}"
        );
        assert!(fine < 0.12, "k=256 error too large: {fine}");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = path(5);
        let a = CommuteEmbedding::compute(&g, &opts(16, 3)).unwrap();
        let b = CommuteEmbedding::compute(&g, &opts(16, 3)).unwrap();
        assert_eq!(a.resistance(0, 4).to_bits(), b.resistance(0, 4).to_bits());
    }

    #[test]
    fn handles_disconnected_graphs() {
        let g = WeightedGraph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let emb = CommuteEmbedding::compute(&g, &opts(200, 4)).unwrap();
        // In-component resistances still approximated.
        assert!((emb.resistance(0, 1) - 1.0).abs() < 0.3);
        assert!((emb.resistance(2, 3) - 1.0).abs() < 0.3);
        // Cross-component values are finite (pseudoinverse extension).
        assert!(emb.resistance(0, 2).is_finite());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let g = path(15);
        let base = opts(32, 9);
        let seq = CommuteEmbedding::compute(&g, &base).unwrap();
        let par = CommuteEmbedding::compute(&g, &EmbeddingOptions { threads: 4, ..base }).unwrap();
        for i in 0..15 {
            for j in 0..15 {
                assert_eq!(
                    seq.resistance(i, j).to_bits(),
                    par.resistance(i, j).to_bits(),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn rejects_zero_k() {
        let g = path(3);
        assert!(CommuteEmbedding::compute(&g, &opts(0, 0)).is_err());
    }

    #[test]
    fn apply_delta_tracks_fresh_build() {
        let old = WeightedGraph::from_edges(
            8,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 2.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (5, 6, 1.0),
                (6, 7, 1.0),
                (0, 7, 0.5),
            ],
        )
        .unwrap();
        let new = WeightedGraph::from_edges(
            8,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 2.4),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (5, 6, 1.0),
                (6, 7, 1.0),
                (0, 7, 0.5),
                (2, 6, 0.8),
            ],
        )
        .unwrap();
        let o = opts(32, 7);
        let mut upd = CommuteEmbedding::compute(&old, &o).unwrap();
        let delta = EdgeDelta::between(&old, &new);
        assert_eq!(
            upd.apply_delta(&delta).unwrap(),
            UpdateOutcome::Applied { changes: 2 }
        );
        let fresh = CommuteEmbedding::compute(&new, &o).unwrap();
        assert_eq!(upd.volume().to_bits(), fresh.volume().to_bits());
        for i in 0..8 {
            for j in 0..8 {
                let (a, b) = (upd.commute_distance(i, j), fresh.commute_distance(i, j));
                assert!(
                    (a - b).abs() <= crate::update::UPDATE_REL_TOL * (1.0 + b),
                    "c({i},{j}): updated {a} vs fresh {b}"
                );
            }
        }
    }

    #[test]
    fn apply_delta_declines_structural_and_persisted() {
        let old = path(5);
        let o = opts(16, 11);

        // Structural: node-count change.
        let grown = path(6);
        let mut upd = CommuteEmbedding::compute(&old, &o).unwrap();
        let delta = EdgeDelta::between(&old, &grown);
        assert_eq!(
            upd.apply_delta(&delta).unwrap(),
            UpdateOutcome::RebuildRequired(crate::update::RebuildReason::Structural)
        );

        // A store-loaded embedding has no options to replay.
        let built = CommuteEmbedding::compute(&old, &o).unwrap();
        let (coords, n, k, volume) = built.persist_parts();
        let mut loaded = CommuteEmbedding::from_persist(coords.to_vec(), n, k, volume);
        let bumped =
            WeightedGraph::from_edges(5, &[(0, 1, 2.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)])
                .unwrap();
        let d2 = EdgeDelta::between(&old, &bumped);
        assert_eq!(
            loaded.apply_delta(&d2).unwrap(),
            UpdateOutcome::RebuildRequired(crate::update::RebuildReason::Unsupported)
        );
    }

    #[test]
    fn accessors() {
        let g = path(4);
        let emb = CommuteEmbedding::compute(&g, &opts(12, 5)).unwrap();
        assert_eq!(emb.n_nodes(), 4);
        assert_eq!(emb.dim(), 12);
        assert_eq!(emb.coords(2).len(), 12);
        assert_eq!(emb.volume(), 6.0);
        assert_eq!(emb.resistance(1, 1), 0.0);
    }
}
